"""Federation tests: routing by parameter coverage across many stores.

Synthetic summary-only stores fabricate coverage shapes (disjoint regions,
overlapping points, ragged grids); the compute-routing seam is exercised by
stubbing member sweeps, plus one end-to-end computed answer over real
checkpointed stores.
"""

import json

import pytest

from repro.errors import ServingError
from repro.serving import (
    ArtifactStore,
    FederatedQueryEngine,
    LRUCache,
    QueryEngine,
    build_engine,
)

from test_serving_query import grid_cells, make_cell, write_store


@pytest.fixture
def two_regions(tmp_path):
    """Two stores covering disjoint (tau, rho) regions at w=2."""
    low = write_store(
        tmp_path / "low",
        grid_cells(taus=(0.2, 0.3), rhos=(0.4, 0.5), values=[1.0, 2.0, 3.0, 4.0]),
    )
    high = write_store(
        tmp_path / "high",
        grid_cells(taus=(0.7, 0.8), rhos=(0.4, 0.5), values=[5.0, 6.0, 7.0, 8.0]),
    )
    return low, high


class TestConstruction:
    def test_build_engine_dispatches_on_store_count(self, two_regions):
        low, high = two_regions
        single = build_engine([ArtifactStore(low)])
        assert type(single) is QueryEngine
        federated = build_engine([low, high])
        assert isinstance(federated, FederatedQueryEngine)

    def test_no_stores_is_an_error(self):
        with pytest.raises(ServingError, match="no store"):
            build_engine([])
        with pytest.raises(ServingError, match="at least one"):
            FederatedQueryEngine([])

    def test_duplicate_directories_are_rejected(self, two_regions):
        low, _ = two_regions
        with pytest.raises(ServingError, match="duplicate"):
            FederatedQueryEngine([low, low])

    def test_missing_member_directory_fails_fast(self, two_regions, tmp_path):
        low, _ = two_regions
        with pytest.raises(ServingError, match="not a directory"):
            FederatedQueryEngine([low, tmp_path / "nope"])


class TestRouting:
    def test_exact_match_anywhere_wins(self, two_regions):
        engine = FederatedQueryEngine(two_regions)
        low_answer = engine.answer("tau=0.2,rho=0.4,w=2")
        assert low_answer["source"] == "exact"
        assert low_answer["metrics"]["score"]["mean"] == 1.0
        high_answer = engine.answer("tau=0.8,rho=0.5,w=2")
        assert high_answer["source"] == "exact"
        assert high_answer["metrics"]["score"]["mean"] == 8.0

    def test_answers_are_tagged_with_the_owning_store(self, two_regions):
        low, high = two_regions
        engine = FederatedQueryEngine([low, high])
        answer = engine.answer("tau=0.8,rho=0.5,w=2")
        assert answer["cells"][0]["store"] == str(high)
        # single-store engines carry no tag (nothing to disambiguate)
        solo = QueryEngine(high).answer("tau=0.8,rho=0.5,w=2")
        assert "store" not in solo["cells"][0]

    def test_nearest_uses_union_wide_scales(self, two_regions):
        """The nearest cell is found over the union of all members' cells.

        The query sits between the regions, slightly nearer the high store's
        corner under the union-normalized metric — a per-store metric (range
        0.1 per axis within each store) would rank cells differently.
        """
        engine = FederatedQueryEngine(two_regions)
        answer = engine.answer("tau=0.56,rho=0.45,w=2")
        assert answer["source"] == "nearest"
        assert answer["cells"][0]["store"].endswith("high")
        mirrored = engine.answer("tau=0.44,rho=0.45,w=2")
        assert mirrored["cells"][0]["store"].endswith("low")

    def test_identical_cells_tie_break_deterministically(self, tmp_path):
        """Two stores holding the same point: the rank picks one, stably."""
        cell = make_cell(0, 0.3, 2, 0.4, score=1.0)
        a = write_store(tmp_path / "a", [cell])
        b = write_store(tmp_path / "b", [json.loads(json.dumps(cell))])
        answer = FederatedQueryEngine([b, a]).answer("tau=0.3,rho=0.4,w=2")
        reversed_answer = FederatedQueryEngine([a, b]).answer(
            "tau=0.3,rho=0.4,w=2"
        )
        # registration order must not matter; the store tag breaks the tie
        assert answer["cells"][0]["store"] == str(a)
        assert reversed_answer["cells"][0]["store"] == str(a)

    def test_interpolation_blends_corners_across_stores(self, tmp_path):
        """A bracket whose corners live in different stores still blends."""
        left = write_store(
            tmp_path / "left",
            [make_cell(0, 0.3, 2, 0.4, score=1.0), make_cell(1, 0.5, 2, 0.4, score=1.0)],
        )
        right = write_store(
            tmp_path / "right",
            [make_cell(0, 0.3, 2, 0.6, score=3.0), make_cell(1, 0.5, 2, 0.6, score=3.0)],
        )
        engine = FederatedQueryEngine([left, right], interpolate=True)
        answer = engine.answer("tau=0.4,rho=0.5,w=2")
        assert answer["source"] == "interpolated"
        assert answer["metrics"]["score"]["mean"] == pytest.approx(2.0)
        stores = {entry["store"] for entry in answer["cells"]}
        assert stores == {str(left), str(right)}

    def test_axis_pinning_requires_union_wide_agreement(self, tmp_path):
        """An omitted axis resolves only when every member pins it alike."""
        a = write_store(tmp_path / "a", grid_cells(w=2))
        b = write_store(tmp_path / "b", grid_cells(w=3))
        engine = FederatedQueryEngine([a, b])
        with pytest.raises(ServingError, match="does not pin"):
            engine.answer("tau=0.3,rho=0.4")
        assert engine.answer("tau=0.3,rho=0.4,w=3")["source"] == "exact"


class TestComputeRouting:
    def test_compute_routes_to_the_member_owning_the_nearest_cell(
        self, two_regions
    ):
        low, high = two_regions
        engine = FederatedQueryEngine([low, high], on_miss="compute")
        low_sentinel, high_sentinel = object(), object()
        engine.stores[0].sweep = lambda: low_sentinel
        engine.stores[1].sweep = lambda: high_sentinel
        assert (
            engine._sweep_for_compute({"tau": 0.75, "rho": 0.45, "w": 2.0})
            is high_sentinel
        )
        assert (
            engine._sweep_for_compute({"tau": 0.25, "rho": 0.45, "w": 2.0})
            is low_sentinel
        )

    def test_unrebuildable_owner_falls_through_to_the_next_member(
        self, two_regions
    ):
        low, high = two_regions
        engine = FederatedQueryEngine([low, high], on_miss="compute")

        def broken():
            raise ServingError("no manifest")

        fallback = object()
        engine.stores[1].sweep = broken
        engine.stores[0].sweep = lambda: fallback
        point = {"tau": 0.75, "rho": 0.45, "w": 2.0}  # owned by high
        assert engine._sweep_for_compute(point) is fallback

    def test_no_rebuildable_member_names_every_failure(self, two_regions):
        engine = FederatedQueryEngine(two_regions, on_miss="compute")
        for member in engine.stores:
            member.sweep = lambda member=member: (_ for _ in ()).throw(
                ServingError(f"broken {member.directory.name}")
            )
        with pytest.raises(ServingError) as exc_info:
            engine._sweep_for_compute({"tau": 0.5, "rho": 0.45, "w": 2.0})
        assert "broken low" in str(exc_info.value)
        assert "broken high" in str(exc_info.value)

    def test_end_to_end_computed_answer_over_real_stores(self, tmp_path):
        from repro.core.config import ModelConfig
        from repro.experiments.parallel import run_sweep_parallel
        from repro.experiments.spec import SweepSpec

        directories = []
        for name, tau in (("a", 0.3), ("b", 0.45)):
            directory = tmp_path / name
            sweep = SweepSpec(
                name=f"fed-{name}",
                base_config=ModelConfig.square(side=10, horizon=1, tau=tau),
                taus=(tau,),
                n_replicates=1,
                seed=5,
            )
            run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
            directories.append(directory)

        engine = FederatedQueryEngine(
            directories, on_miss="compute", max_distance=1e-9
        )
        answer = engine.answer("tau=0.4,rho=0.5,w=1")
        assert answer["source"] == "computed"
        assert answer["cached"] is False
        # the same query answers bitwise-identically from the cache
        again = engine.answer("tau=0.4,rho=0.5,w=1")
        assert again["cached"] is True
        again.pop("cached")
        answer.pop("cached")
        assert json.dumps(again, sort_keys=True) == json.dumps(
            answer, sort_keys=True
        )


class TestFederatedStats:
    def test_store_section_reports_members_and_totals(self, two_regions):
        low, high = two_regions
        engine = FederatedQueryEngine(
            [low, high], cache=LRUCache(4), generation=3
        )
        stats = engine.stats()
        store = stats["store"]
        assert store["federated"] is True
        assert store["n_stores"] == 2
        assert store["n_cells"] == 8
        assert store["n_answerable"] == 8
        assert store["generation"] == 3
        assert [entry["directory"] for entry in store["stores"]] == [
            str(low),
            str(high),
        ]

    def test_cells_surface_covers_the_union(self, two_regions):
        engine = FederatedQueryEngine(two_regions)
        cells = engine.answer_cells()
        assert len(cells) == 8
        assert {cell["store"] for cell in cells} == {
            str(directory) for directory in two_regions
        }
        # tagging copies: the member stores' cached cells stay untouched
        for member in engine.stores:
            assert all(
                "store" not in cell for cell in member.answerable_cells()
            )
