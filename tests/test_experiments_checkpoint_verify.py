"""Self-verifying store tests: CRC records, verify/repair, SIGKILL matrix.

Covers the store-format-v2 guarantees: every ``metrics.jsonl`` line carries a
``crc32`` over the rest of the record; :func:`verify_store` classifies every
way a store can rot (torn tail, corrupt line, CRC mismatch, duplicates,
orphans, manifest drift) into a machine-readable report; and
:func:`repair_store` atomically truncates to the longest valid prefix so the
store is resumable again.  The SIGKILL matrix at the bottom kills real
checkpointed sweep processes at fault-plan-chosen points and asserts the
resumed table is bitwise identical to an uninterrupted run.
"""

import json
import subprocess
import sys
import warnings
import zlib
from pathlib import Path

import pytest

from repro.core.config import ModelConfig
from repro.errors import CheckpointWarning
from repro.experiments.checkpoint import (
    SweepCheckpoint,
    encode_record_line,
    repair_store,
    verify_record_crc,
    verify_store,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.spec import SweepSpec

TIMING_COLUMNS = {"wall_clock_seconds"}


def comparable_rows(table):
    """The table's rows with the timing columns stripped."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in table.rows
    ]


def make_sweep() -> SweepSpec:
    """The four-cell sweep used across this module (also by subprocesses)."""
    base = ModelConfig.square(side=10, horizon=1, tau=0.3)
    return SweepSpec(
        name="verify-unit",
        base_config=base,
        taus=[0.3, 0.35, 0.4, 0.45],
        n_replicates=2,
        seed=11,
    )


@pytest.fixture
def sweep() -> SweepSpec:
    """Fixture wrapper around :func:`make_sweep`."""
    return make_sweep()


@pytest.fixture
def store(tmp_path, sweep):
    """A completed, healthy checkpoint store for the sweep."""
    directory = tmp_path / "store"
    run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
    return directory


class TestRecordCrc:
    def test_round_trip_verifies(self):
        line = encode_record_line({"spec_hash": "abc", "rows": [{"x": 1.5}]})
        record = json.loads(line)
        assert verify_record_crc(record) is True

    def test_crc_is_last_key_and_over_the_rest(self):
        line = encode_record_line({"spec_hash": "abc", "rows": []})
        record = json.loads(line)
        assert list(record)[-1] == "crc32"
        body = json.dumps(
            {k: v for k, v in record.items() if k != "crc32"},
            separators=(",", ":"),
        )
        assert record["crc32"] == zlib.crc32(body.encode("utf-8"))

    def test_bit_flip_is_detected(self):
        line = encode_record_line({"spec_hash": "abc", "rows": [{"x": 1.5}]})
        tampered = json.loads(line.replace(b"1.5", b"2.5"))
        assert verify_record_crc(tampered) is False

    def test_legacy_record_without_crc_is_indeterminate(self):
        assert verify_record_crc({"spec_hash": "abc", "rows": []}) is None

    def test_written_records_carry_valid_crc(self, store):
        for line in (store / "metrics.jsonl").read_bytes().splitlines():
            assert verify_record_crc(json.loads(line)) is True


class TestLoaderWarnings:
    def test_dropped_line_warning_names_file_line_and_bytes(self, store, sweep):
        metrics = store / "metrics.jsonl"
        lines = metrics.read_bytes().splitlines(keepends=True)
        # Tear line 2 mid-record; the terminated fragment keeps line 3 intact
        # (the double-interrupt shape record() leaves after re-terminating).
        lines[1] = lines[1][:25] + b"\n"
        metrics.write_bytes(b"".join(lines))
        with pytest.warns(CheckpointWarning) as caught:
            SweepCheckpoint(store, list(sweep.cells()), sweep=sweep)
        message = str(caught[0].message)
        assert str(metrics) in message
        assert "line 2" in message
        assert "25 bytes" in message

    def test_crc_mismatch_warns_and_cell_reruns(self, store, sweep):
        metrics = store / "metrics.jsonl"
        data = metrics.read_bytes()
        # Flip a digit inside the first record's payload, keeping valid JSON.
        tampered = data.replace(b'"replicate":0', b'"replicate":9', 1)
        assert tampered != data
        metrics.write_bytes(tampered)
        with pytest.warns(CheckpointWarning, match="CRC32 mismatch"):
            checkpoint = SweepCheckpoint(store, list(sweep.cells()), sweep=sweep)
        assert len(checkpoint.resumed_rows()) == 3  # the tampered cell dropped


class TestVerifyStore:
    def test_healthy_store_is_ok(self, store):
        report = verify_store(store)
        assert report["ok"] is True
        assert report["problems"] == []
        assert report["records"]["total"] == 4
        assert report["records"]["valid"] == 4
        assert report["manifest"]["present"] is True
        size = (store / "metrics.jsonl").stat().st_size
        assert report["valid_prefix_bytes"] == size

    def test_torn_tail_flagged(self, store):
        metrics = store / "metrics.jsonl"
        data = metrics.read_bytes()
        metrics.write_bytes(data[:-30])  # cut the final record mid-line
        report = verify_store(store)
        assert report["ok"] is False
        kinds = [p["kind"] for p in report["problems"]]
        assert kinds == ["torn-tail"]
        # Everything before the tear is still a valid, resumable prefix.
        assert report["valid_prefix_bytes"] == len(
            b"".join(data.splitlines(keepends=True)[:3])
        )

    def test_crc_mismatch_flagged_with_line_number(self, store):
        metrics = store / "metrics.jsonl"
        data = metrics.read_bytes()
        metrics.write_bytes(data.replace(b'"replicate":0', b'"replicate":9', 2))
        report = verify_store(store)
        kinds = [p["kind"] for p in report["problems"]]
        assert "crc-mismatch" in kinds
        assert all(isinstance(p["line"], int) for p in report["problems"])

    def test_duplicate_record_flagged(self, store):
        metrics = store / "metrics.jsonl"
        lines = metrics.read_bytes().splitlines(keepends=True)
        metrics.write_bytes(b"".join(lines + [lines[0]]))
        report = verify_store(store)
        assert [p["kind"] for p in report["problems"]] == ["duplicate-record"]
        assert report["problems"][0]["line"] == 5

    def test_quarantine_then_resume_verifies_clean(self, tmp_path, sweep):
        # The code's own skip-then-resume flow: on_error="skip" quarantines
        # a cell as a failure record, the resumed run reruns it and appends
        # its rows under the same spec hash.  A rows record superseding a
        # failure record is by design — verify must not flag it (and repair
        # must not truncate completed work behind it).
        directory = tmp_path / "quarantine"
        run_sweep_parallel(
            sweep,
            workers=1,
            checkpoint_dir=directory,
            fault_plan=FaultPlan().crash(1),
            on_error="skip",
            backoff=0.0,
        )
        assert verify_store(directory)["ok"] is True
        table = run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert table.failures == []
        report = verify_store(directory)
        assert report["ok"] is True
        assert report["problems"] == []
        assert report["records"]["valid"] == 5  # 4 rows + superseded failure
        assert repair_store(directory)["repair"]["performed"] is False

    def test_repeated_failure_records_are_not_duplicates(self, tmp_path, sweep):
        # A quarantined cell that fails again on the next resume appends a
        # second failure record for the same hash — still the healthy flow.
        directory = tmp_path / "requarantine"
        for _ in range(2):
            run_sweep_parallel(
                sweep,
                workers=1,
                checkpoint_dir=directory,
                fault_plan=FaultPlan().crash(1, attempts=99),
                on_error="skip",
                backoff=0.0,
            )
        report = verify_store(directory)
        assert report["ok"] is True
        assert report["records"]["valid"] == 5  # 3 rows + 2 failure records

    def test_failure_after_rows_is_flagged_duplicate(self, store):
        # The inverse never happens legitimately: a completed cell is
        # skipped on resume, so nothing appends behind its rows record.
        first = json.loads(
            (store / "metrics.jsonl").read_bytes().splitlines()[0]
        )
        stray = encode_record_line(
            {
                "spec_hash": first["spec_hash"],
                "failure": {"error": "stray", "attempts": 1},
            }
        )
        with open(store / "metrics.jsonl", "ab") as handle:
            handle.write(stray)
        report = verify_store(store)
        assert [p["kind"] for p in report["problems"]] == ["duplicate-record"]

    def test_orphan_record_flagged(self, store):
        metrics = store / "metrics.jsonl"
        orphan = encode_record_line(
            {"spec_hash": "not-in-this-manifest", "rows": []}
        )
        with open(metrics, "ab") as handle:
            handle.write(orphan)
        report = verify_store(store)
        assert [p["kind"] for p in report["problems"]] == ["orphan-record"]

    def test_missing_manifest_flagged(self, store):
        (store / "manifest.json").unlink()
        report = verify_store(store)
        assert report["manifest"]["present"] is False
        assert "manifest-missing" in [p["kind"] for p in report["problems"]]

    def test_foreign_manifest_flagged(self, store):
        (store / "manifest.json").write_text(json.dumps({"format": "other"}))
        report = verify_store(store)
        assert "manifest-foreign" in [p["kind"] for p in report["problems"]]

    def test_manifest_drift_flagged(self, store):
        manifest_path = store / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["n_cells"] = 99  # no longer matches the cell list
        manifest_path.write_text(json.dumps(manifest))
        report = verify_store(store)
        assert "manifest-drift" in [p["kind"] for p in report["problems"]]

    def test_empty_directory_reports_missing_pieces(self, tmp_path):
        report = verify_store(tmp_path / "nothing")
        assert report["ok"] is False
        assert report["records"]["metrics_present"] is False


class TestRepairStore:
    def test_repair_truncates_to_valid_prefix_and_resumes(
        self, store, sweep
    ):
        uninterrupted = run_sweep_parallel(sweep, workers=1)
        metrics = store / "metrics.jsonl"
        data = metrics.read_bytes()
        metrics.write_bytes(data[:-30])  # torn tail
        report = repair_store(store)
        assert report["repair"]["performed"] is True
        assert report["repair"]["bytes_dropped"] > 0
        assert verify_store(store)["ok"] is True
        # The repaired store resumes into the exact uninterrupted table.
        resumed = run_sweep_parallel(sweep, workers=1, checkpoint_dir=store)
        assert comparable_rows(resumed) == comparable_rows(uninterrupted)

    def test_repair_of_healthy_store_is_a_no_op(self, store):
        before = (store / "metrics.jsonl").read_bytes()
        report = repair_store(store)
        assert report["repair"]["performed"] is False
        assert (store / "metrics.jsonl").read_bytes() == before

    def test_repair_cuts_at_first_corrupt_line(self, store, sweep):
        metrics = store / "metrics.jsonl"
        lines = metrics.read_bytes().splitlines(keepends=True)
        lines[1] = b"\xff\xfe garbage \xff\xfe\n"
        metrics.write_bytes(b"".join(lines))
        repair_store(store)
        kept = metrics.read_bytes()
        assert kept == lines[0]
        # Cells 1..3 rerun; the resumed table is still complete and correct.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = run_sweep_parallel(sweep, workers=1, checkpoint_dir=store)
        assert comparable_rows(resumed) == comparable_rows(
            run_sweep_parallel(sweep, workers=1)
        )


class TestTornRecordFault:
    def test_torn_record_detected_and_repaired(self, tmp_path, sweep):
        directory = tmp_path / "torn"
        uninterrupted = run_sweep_parallel(sweep, workers=1)
        run_sweep_parallel(
            sweep,
            workers=1,
            checkpoint_dir=directory,
            fault_plan=FaultPlan().torn_record(2, keep_bytes=30),
        )
        report = verify_store(directory)
        assert report["ok"] is False
        # The torn fragment was newline-terminated by the next append, so it
        # shows up as a corrupt line mid-file (exactly the double-kill shape).
        assert "corrupt-line" in [p["kind"] for p in report["problems"]]
        repair_store(directory)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = run_sweep_parallel(
                sweep, workers=1, checkpoint_dir=directory
            )
        assert comparable_rows(resumed) == comparable_rows(uninterrupted)
        assert verify_store(directory)["ok"] is True


def run_killed_sweep(directory: Path, plan_code: str) -> int:
    """Run the module sweep in a subprocess that a fault plan will SIGKILL."""
    script = (
        "import sys, warnings; sys.path.insert(0, 'src'); sys.path.insert(0, 'tests')\n"
        "warnings.simplefilter('ignore')\n"
        "from repro.experiments.faults import FaultPlan\n"
        "from repro.experiments.parallel import run_sweep_parallel\n"
        "from test_experiments_checkpoint_verify import make_sweep\n"
        f"plan = {plan_code}\n"
        f"run_sweep_parallel(make_sweep(), workers=1, checkpoint_dir={str(directory)!r}, fault_plan=plan)\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        cwd=Path(__file__).resolve().parent.parent,
        timeout=240,
        capture_output=True,
    )
    return result.returncode


class TestSigkillMatrix:
    """Kill real checkpointed sweeps at chosen points; resume must be exact.

    The matrix covers the three distinct on-disk states a kill can leave:
    before any record (manifest written, metrics empty or absent), between
    two records (a clean prefix), and mid-record (a torn line).  In every
    case a rerun against the directory must produce a table bitwise
    identical to an uninterrupted run.
    """

    @pytest.fixture
    def uninterrupted(self, sweep):
        """Rows of the never-killed reference run."""
        return comparable_rows(run_sweep_parallel(sweep, workers=1))

    def test_killed_before_first_record(self, tmp_path, sweep, uninterrupted):
        directory = tmp_path / "kill-first"
        code = run_killed_sweep(directory, "FaultPlan().kill(0)")
        assert code != 0  # SIGKILL: no Python exit path
        assert (directory / "manifest.json").exists()
        assert not (directory / "metrics.jsonl").exists()
        resumed = run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert comparable_rows(resumed) == uninterrupted

    def test_killed_mid_sweep_resumes_prefix(
        self, tmp_path, sweep, uninterrupted
    ):
        directory = tmp_path / "kill-mid"
        code = run_killed_sweep(directory, "FaultPlan().kill(2)")
        assert code != 0
        recorded = [
            json.loads(line)["cell_index"]
            for line in (directory / "metrics.jsonl").read_bytes().splitlines()
        ]
        assert recorded == [0, 1]  # the completed prefix survived the kill
        assert verify_store(directory)["ok"] is True
        resumed = run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert comparable_rows(resumed) == uninterrupted

    def test_killed_mid_record_write(self, tmp_path, sweep, uninterrupted):
        directory = tmp_path / "kill-torn"
        code = run_killed_sweep(
            directory, "FaultPlan().torn_record(1, keep_bytes=40, kill=True)"
        )
        assert code != 0
        report = verify_store(directory)
        assert report["ok"] is False
        assert [p["kind"] for p in report["problems"]] == ["torn-tail"]
        # Resume straight through the torn tail: the loader skips it (with a
        # warning) and the affected cell reruns.
        with pytest.warns(CheckpointWarning):
            resumed = run_sweep_parallel(
                sweep, workers=1, checkpoint_dir=directory
            )
        assert comparable_rows(resumed) == uninterrupted

    def test_killed_mid_record_then_repair_then_resume(
        self, tmp_path, sweep, uninterrupted
    ):
        directory = tmp_path / "kill-torn-repair"
        run_killed_sweep(
            directory, "FaultPlan().torn_record(1, keep_bytes=40, kill=True)"
        )
        report = repair_store(directory)
        assert report["repair"]["performed"] is True
        assert verify_store(directory)["ok"] is True
        resumed = run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert comparable_rows(resumed) == uninterrupted


class TestZeroByteMetricsRegression:
    """A manifest plus a zero-byte ``metrics.jsonl`` is a *clean* store.

    This is exactly what a sweep killed after opening the log but before the
    first record looks like — nothing recorded yet, nothing corrupt.  Verify
    must report it clean (exit 0 through the CLI), repair must not touch it,
    resume must run every cell, and the summary side must report every cell
    missing rather than fail.
    """

    @pytest.fixture
    def zero_byte_store(self, tmp_path, sweep):
        from repro.experiments.checkpoint import SweepCheckpoint

        directory = tmp_path / "zero-byte"
        SweepCheckpoint(directory, list(sweep.cells()), sweep)  # manifest only
        (directory / "metrics.jsonl").write_bytes(b"")
        return directory

    def test_verify_reports_clean(self, zero_byte_store):
        report = verify_store(zero_byte_store)
        assert report["ok"] is True
        assert report["problems"] == []
        assert report["records"]["total"] == 0
        assert report["valid_prefix_bytes"] == 0

    def test_cli_verify_exits_zero(self, zero_byte_store):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["checkpoint", "verify", str(zero_byte_store)], out=out) == 0
        assert json.loads(out.getvalue())["ok"] is True

    def test_repair_is_a_no_op(self, zero_byte_store):
        report = repair_store(zero_byte_store)
        assert report["repair"]["performed"] is False
        assert (zero_byte_store / "metrics.jsonl").read_bytes() == b""

    def test_resume_runs_every_cell(self, zero_byte_store, sweep):
        baseline = comparable_rows(run_sweep_parallel(sweep, workers=1))
        resumed = run_sweep_parallel(
            sweep, workers=1, checkpoint_dir=zero_byte_store
        )
        assert comparable_rows(resumed) == baseline

    def test_summary_reports_every_cell_missing(self, zero_byte_store, sweep):
        from repro.experiments.checkpoint import summarize_store

        payload = summarize_store(zero_byte_store)
        assert payload["n_cells"] == len(list(sweep.cells()))
        assert payload["n_missing"] == payload["n_cells"]
        assert payload["complete"] is False
        assert all(cell["metrics"] == {} for cell in payload["cells"])
