"""Tests for the lemma/substrate/baseline validation experiments (small params)."""

import numpy as np
import pytest

from repro.experiments.validation import (
    density_sweep_experiment,
    dynamics_ablation_experiment,
    firewall_experiment,
    kawasaki_comparison_experiment,
    lemma19_unhappy_experiment,
    percolation_substrate_experiment,
    proposition1_experiment,
    radical_expansion_experiment,
)


class TestLemma19:
    def test_empirical_matches_exact(self):
        table = lemma19_unhappy_experiment(horizons=(1, 2), tau=0.45, n_trials=10, seed=0)
        assert len(table) == 2
        for row in table:
            assert row["empirical_unhappy_fraction"] == pytest.approx(
                row["exact_probability"], abs=0.06
            )
            assert row["lemma_lower_bound"] <= row["exact_probability"]
            assert row["exact_probability"] <= row["lemma_upper_bound"]


class TestProposition1:
    def test_concentration_high(self):
        table = proposition1_experiment(horizons=(3,), n_samples=200, seed=0)
        assert len(table) == 1
        assert table[0]["concentration_probability"] > 0.9
        assert table[0]["mean_deviation"] < table[0]["window"]


class TestFirewallAndRadical:
    def test_firewall_static_and_dynamic_checks_hold(self):
        table = firewall_experiment(horizon=2, n_replicates=2, seed=1)
        assert len(table) == 2
        for row in table:
            assert row["firewall_monochromatic"]
            assert row["static_check_holds"]
            assert row["survives_adversarial_run"]

    def test_radical_regions_expand_and_seed_monochromatic_patch(self):
        table = radical_expansion_experiment(horizon=3, n_replicates=2, seed=2)
        assert len(table) == 2
        assert all(row["expandable"] for row in table)
        assert all(row["terminated"] for row in table)
        # The cascade leaves the planted centre inside a monochromatic region
        # at least as large as the core window in most replicates.
        assert np.mean([row["final_center_mono_radius"] for row in table]) >= 1.0


class TestPercolationSubstrate:
    def test_tables_produced(self):
        results = percolation_substrate_experiment(
            fpp_ks=(6, 12),
            fpp_trials=20,
            chemical_separations=(6,),
            chemical_trials=20,
            radius_tail_radii=(1, 2, 3),
            radius_tail_trials=120,
            seed=3,
        )
        assert set(results) == {"first_passage", "chemical", "radius_tail"}
        fpp = results["first_passage"]
        assert len(fpp) == 2
        assert fpp[1]["mean_passage_time"] > fpp[0]["mean_passage_time"]
        chem = results["chemical"]
        assert chem[0]["connection_rate"] > 0.5
        tail = results["radius_tail"]
        probabilities = [
            row["tail_probability"] for row in tail if row["radius"] >= 0
        ]
        assert all(b <= a for a, b in zip(probabilities, probabilities[1:]))


class TestDensityAndBaselines:
    def test_density_sweep_monotone_dominance(self):
        table = density_sweep_experiment(
            horizon=1, densities=[0.5, 0.9], n_replicates=2, seed=4
        )
        by_density = {}
        for row in table:
            by_density.setdefault(row["density"], []).append(
                row["final_dominant_fraction"]
            )
        assert np.mean(by_density[0.9]) > np.mean(by_density[0.5])
        # At p = 1/2 complete segregation does not occur.
        assert np.mean(by_density[0.5]) < 0.95

    def test_kawasaki_comparison(self):
        table = kawasaki_comparison_experiment(
            horizon=1, n_replicates=1, seed=5, side=24, kawasaki_max_proposals=2000
        )
        row = table[0]
        assert row["glauber_terminated"]
        # Kawasaki conserves the magnetisation exactly.
        assert row["kawasaki_magnetization"] == pytest.approx(
            row["initial_magnetization"]
        )
        assert row["glauber_homogeneity"] > 0.5

    def test_dynamics_ablation_variants_terminate(self):
        table = dynamics_ablation_experiment(horizon=1, n_replicates=1, seed=6, side=24)
        variants = {row["variant"] for row in table}
        assert len(variants) == 3
        for row in table:
            assert row["terminated"]
            assert row["final_unhappy_fraction"] == 0.0
