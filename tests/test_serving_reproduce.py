"""``repro reproduce`` round-trip matrix.

The store's core promise: a manifest is sufficient to re-execute every
recorded cell and regenerate its rows *bitwise* (wall-clock columns aside).
This module drives the matrix the ISSUE prescribes — fresh sweep reproduced
cell by cell, mutated manifests rejected with named diffs, tampered rows
caught at the exact row/column, quarantined failures reported instead of
crashed on — plus the engine-independence cross-check.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import ModelConfig
from repro.errors import ServingError
from repro.experiments.checkpoint import encode_record_line
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.spec import SweepSpec
from repro.serving import reproduce_store


def make_sweep(seed: int = 23) -> SweepSpec:
    """The small sweep reproduced across this module."""
    base = ModelConfig.square(side=10, horizon=1, tau=0.3)
    return SweepSpec(
        name="repro-unit",
        base_config=base,
        taus=(0.3, 0.45),
        densities=(0.5,),
        n_replicates=2,
        seed=seed,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> Path:
    """One completed store shared by the read-only reproduce tests."""
    directory = tmp_path_factory.mktemp("reproduce") / "store"
    run_sweep_parallel(make_sweep(), workers=1, checkpoint_dir=directory)
    return directory


def mutate_manifest(source: Path, target_dir: Path, **sweep_overrides) -> Path:
    """Copy a store and edit fields of the manifest's sweep snapshot."""
    import shutil

    mutated = target_dir / "mutated"
    shutil.copytree(source, mutated)
    manifest = json.loads((mutated / "manifest.json").read_text())
    manifest["sweep"].update(sweep_overrides)
    (mutated / "manifest.json").write_text(json.dumps(manifest))
    return mutated


class TestFreshStoreReproduces:
    def test_every_cell_matches_bitwise(self, store):
        report = reproduce_store(store)
        assert report.ok is True
        assert report.counts() == {"match": 2}
        for result in report.results:
            assert result.diffs == []
            assert result.damaged is False

    def test_single_cell_selection(self, store):
        name = list(make_sweep().cells())[1].name
        report = reproduce_store(store, cell=name)
        assert [r.name for r in report.results] == [name]
        assert report.ok is True

    def test_unknown_cell_name_is_an_error_naming_the_cells(self, store):
        with pytest.raises(ServingError, match="repro-unit"):
            reproduce_store(store, cell="no-such-cell")

    def test_manifest_path_spelling_accepted(self, store):
        assert reproduce_store(store / "manifest.json").ok is True

    def test_vectorized_engine_reproduces_identically(self, store):
        """Rows are engine-independent, so ensemble reproduction matches."""
        report = reproduce_store(store, ensemble_size=2)
        assert report.ok is True
        assert report.counts() == {"match": 2}

    def test_report_as_dict_is_json_serializable(self, store):
        payload = json.loads(json.dumps(reproduce_store(store).as_dict()))
        assert payload["ok"] is True
        assert {cell["status"] for cell in payload["cells"]} == {"match"}


class TestMutatedManifest:
    def test_changed_seed_is_spec_drift_with_named_hashes(self, store, tmp_path):
        mutated = mutate_manifest(store, tmp_path, seed=999)
        report = reproduce_store(mutated)
        assert report.ok is False
        assert report.counts() == {"spec-drift": 2}
        detail = report.results[0].detail
        assert "spec_hash" in detail and "disagree" in detail

    def test_changed_tau_grid_is_spec_drift(self, store, tmp_path):
        mutated = mutate_manifest(store, tmp_path, taus=[0.31, 0.45])
        report = reproduce_store(mutated)
        assert report.ok is False
        assert "spec-drift" in report.counts()

    def test_wrong_cell_count_is_rejected_outright(self, store, tmp_path):
        mutated = mutate_manifest(store, tmp_path, taus=[0.3, 0.45, 0.5])
        with pytest.raises(ServingError, match="expands to 3"):
            reproduce_store(mutated)

    def test_missing_manifest_is_an_error(self, tmp_path):
        (tmp_path / "metrics.jsonl").write_text("")
        with pytest.raises(ServingError, match="manifest"):
            reproduce_store(tmp_path)


class TestTamperedRows:
    def test_flipped_value_yields_named_diff(self, store, tmp_path):
        """One bit of one stored value → mismatch naming the row and column."""
        import shutil

        tampered = tmp_path / "tampered"
        shutil.copytree(store, tampered)
        lines = (tampered / "metrics.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        record.pop("crc32")
        record["rows"][1]["n_flips"] = record["rows"][1]["n_flips"] + 1
        encoded = encode_record_line(record)
        if isinstance(encoded, bytes):
            encoded = encoded.decode("utf-8")
        lines[0] = encoded.rstrip("\n")
        (tampered / "metrics.jsonl").write_text("\n".join(lines) + "\n")

        report = reproduce_store(tampered)
        assert report.ok is False
        assert report.counts() == {"mismatch": 1, "match": 1}
        [mismatch] = [r for r in report.results if r.status == "mismatch"]
        assert mismatch.diffs[0]["row"] == 1
        assert mismatch.diffs[0]["column"] == "n_flips"
        assert mismatch.diffs[0]["stored"] == mismatch.diffs[0]["regenerated"] + 1


class TestIncompleteStores:
    def test_quarantined_cell_reported_not_crashed(self, tmp_path):
        directory = tmp_path / "store"
        run_sweep_parallel(
            make_sweep(),
            workers=1,
            checkpoint_dir=directory,
            fault_plan=FaultPlan().crash(0, attempts=9),
            retries=0,
            on_error="skip",
        )
        report = reproduce_store(directory)
        assert report.counts() == {"recorded-failure": 1, "match": 1}
        assert report.ok is True  # an honest store state, not a regression
        [failure] = [r for r in report.results if r.status == "recorded-failure"]
        assert "InjectedFault" in failure.detail

    def test_never_recorded_cell_reported_missing(self, store, tmp_path):
        import shutil

        partial = tmp_path / "partial"
        shutil.copytree(store, partial)
        lines = (partial / "metrics.jsonl").read_text().splitlines()
        (partial / "metrics.jsonl").write_text(lines[0] + "\n")
        report = reproduce_store(partial)
        assert report.counts() == {"match": 1, "missing": 1}
        assert report.ok is True


class TestReproduceCli:
    def test_clean_store_exits_zero(self, store):
        out = io.StringIO()
        assert main(["reproduce", str(store)], out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["ok"] is True
        assert payload["counts"] == {"match": 2}

    def test_mutated_manifest_exits_one_with_named_diff(self, store, tmp_path):
        mutated = mutate_manifest(store, tmp_path, seed=999)
        out = io.StringIO()
        assert main(["reproduce", str(mutated)], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["ok"] is False
        assert payload["cells"][0]["status"] == "spec-drift"
        assert "spec_hash" in payload["cells"][0]["detail"]

    def test_cell_flag_and_max_diffs_flag(self, store):
        name = list(make_sweep().cells())[0].name
        out = io.StringIO()
        rc = main(
            ["reproduce", str(store), "--cell", name, "--max-diffs", "2"],
            out=out,
        )
        assert rc == 0
        assert len(json.loads(out.getvalue())["cells"]) == 1

    def test_unusable_store_exits_one_with_message(self, tmp_path, capsys):
        (tmp_path / "metrics.jsonl").write_text("")
        assert main(["reproduce", str(tmp_path)], out=io.StringIO()) == 1
        assert "manifest" in capsys.readouterr().err


class TestCommittedFixtureStore:
    """The committed fixture (``tests/data/sweep_fixture_store``) must keep
    reproducing on today's engine — rows recorded by an earlier build,
    regenerated bitwise now.  Refresh deliberately with
    ``tools/make_fixture_store.py`` if the engine's behaviour changes."""

    FIXTURE = Path(__file__).parent / "data" / "sweep_fixture_store"

    def test_fixture_reproduces_bitwise(self):
        report = reproduce_store(self.FIXTURE)
        assert report.ok is True
        assert report.counts() == {"match": 4}

    def test_fixture_summary_regenerates_byte_identical(self, tmp_path):
        import shutil

        from repro.experiments.checkpoint import write_summary

        copy = tmp_path / "fixture"
        shutil.copytree(self.FIXTURE, copy)
        (copy / "summary.json").unlink()
        assert write_summary(copy).read_bytes() == (
            self.FIXTURE / "summary.json"
        ).read_bytes()

    def test_fixture_answers_queries(self):
        from repro.serving import QueryEngine

        engine = QueryEngine(self.FIXTURE, interpolate=True)
        exact = engine.answer("tau=0.3,rho=0.4,w=1")
        assert exact["source"] == "exact"
        blended = engine.answer("tau=0.375,rho=0.5,w=1")
        assert blended["source"] == "interpolated"
