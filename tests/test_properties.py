"""Hypothesis property tests of the model's core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.regions import (
    almost_monochromatic_radius_map,
    monochromatic_radius_map,
)
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.ensemble import EnsembleDynamics
from repro.core.initializer import random_configuration
from repro.core.lyapunov import lyapunov_energy, max_energy
from repro.core.neighborhood import neighborhood_size, window_sums
from repro.core.state import ModelState
from repro.theory.entropy import binary_entropy

COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


config_strategy = st.builds(
    ModelConfig.square,
    side=st.sampled_from([15, 20, 24]),
    horizon=st.sampled_from([1, 2]),
    tau=st.floats(min_value=0.2, max_value=0.8),
)


@COMMON_SETTINGS
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=10**6))
def test_dynamics_always_terminates_with_no_flippable_agents(config, seed):
    """The Lyapunov argument: the process terminates from any Bernoulli start."""
    state = ModelState(config, random_configuration(config, seed=seed))
    result = GlauberDynamics(state, seed=seed + 1).run()
    assert result.terminated
    assert state.n_flippable == 0


@COMMON_SETTINGS
@given(config=config_strategy, seed=st.integers(min_value=0, max_value=10**6))
def test_energy_never_decreases_and_stays_bounded(config, seed):
    state = ModelState(config, random_configuration(config, seed=seed))
    initial = state.energy()
    dynamics = GlauberDynamics(state, seed=seed)
    dynamics.run(max_flips=200)
    final = state.energy()
    assert initial <= final <= max_energy(config.n_rows, config.n_cols, config.horizon)


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
    n_flips=st.integers(min_value=0, max_value=60),
)
def test_incremental_state_equals_recomputed_state_after_dynamics(config, seed, n_flips):
    """Incremental bookkeeping matches a from-scratch recomputation mid-run."""
    state = ModelState(config, random_configuration(config, seed=seed))
    GlauberDynamics(state, seed=seed).run(max_flips=n_flips)
    reference = ModelState(config, state.grid.copy())
    assert np.array_equal(state.plus_counts(), reference.plus_counts())
    assert np.array_equal(state.flippable_mask(), reference.flippable_mask())


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_energy_strictly_increases_on_every_scalar_flip(config, seed):
    """The paper's Lyapunov argument, flip by flip: each performed flip must
    strictly raise the energy (no-op steps of the discrete scheduler leave it
    unchanged)."""
    state = ModelState(config, random_configuration(config, seed=seed))
    dynamics = GlauberDynamics(state, seed=seed + 1)
    energies = [state.energy()]

    def record(_, event):
        if event is not None:
            energies.append(state.energy())

    dynamics.run(max_flips=40, callback=record)
    deltas = np.diff(energies)
    assert len(energies) == dynamics.n_flips + 1
    assert np.all(deltas > 0)


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_energy_strictly_increases_on_every_ensemble_flip(config, seed):
    """The ensemble engine preserves per-flip Lyapunov monotonicity in every
    replica: any replica reported as flipping in a round strictly gains
    energy, and the others stay put."""
    ensemble = EnsembleDynamics(config, n_replicas=3, seed=seed)
    energies = ensemble.energies()
    for _ in range(30):
        flipped = ensemble.step_all()
        new_energies = ensemble.energies()
        flipped_mask = np.zeros(ensemble.n_replicas, dtype=bool)
        flipped_mask[flipped] = True
        assert np.all(new_energies[flipped_mask] > energies[flipped_mask])
        assert np.all(new_energies[~flipped_mask] == energies[~flipped_mask])
        energies = new_energies
        if ensemble.all_terminated:
            break


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
    n_flips=st.integers(min_value=0, max_value=60),
)
def test_scalar_masks_match_recompute_all_after_flip_sequence(config, seed, n_flips):
    """Incremental unhappy/flippable bookkeeping equals a fresh rebuild."""
    state = ModelState(config, random_configuration(config, seed=seed))
    GlauberDynamics(state, seed=seed).run(max_flips=n_flips)
    reference = ModelState(config, state.grid.copy())
    reference.recompute_all()
    assert state.n_unhappy == reference.n_unhappy
    assert state.n_flippable == reference.n_flippable
    assert np.array_equal(state.unhappy_mask(), reference.unhappy_mask())
    assert np.array_equal(state.flippable_mask(), reference.flippable_mask())
    assert np.array_equal(
        state.unhappy_sampler.to_array(), reference.unhappy_sampler.to_array()
    )
    assert np.array_equal(
        state.flippable_sampler.to_array(), reference.flippable_sampler.to_array()
    )


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
    n_flips=st.integers(min_value=0, max_value=60),
)
def test_ensemble_masks_match_recompute_all_after_flip_sequence(config, seed, n_flips):
    """Every replica's incremental masks equal a fresh scalar rebuild."""
    ensemble = EnsembleDynamics(config, n_replicas=2, seed=seed)
    ensemble.run(max_flips=n_flips)
    for replica in range(ensemble.n_replicas):
        reference = ModelState(config, grid=None)
        reference.apply_spin_array(ensemble.replica_spins(replica))
        assert ensemble.unhappy_counts()[replica] == reference.n_unhappy
        assert ensemble.flippable_counts()[replica] == reference.n_flippable
        assert np.array_equal(ensemble.happy_mask(replica), reference.happy_mask())
        assert np.array_equal(
            ensemble.flippable_mask(replica), reference.flippable_mask()
        )
        assert np.array_equal(
            ensemble.unhappy_indices(replica),
            reference.unhappy_sampler.to_array(),
        )
        assert np.array_equal(
            ensemble.flippable_indices(replica),
            reference.flippable_sampler.to_array(),
        )


@COMMON_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    radius=st.integers(min_value=1, max_value=3),
    density=st.floats(min_value=0.1, max_value=0.9),
)
def test_window_sums_bounded_by_window_size(seed, radius, density):
    rng = np.random.default_rng(seed)
    arr = (rng.random((12, 12)) < density).astype(np.int64)
    sums = window_sums(arr, radius)
    assert sums.min() >= 0
    assert sums.max() <= neighborhood_size(radius)
    assert sums.sum() == arr.sum() * neighborhood_size(radius)


@COMMON_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_energy_invariant_under_global_type_exchange(seed):
    """The model is symmetric under swapping the two agent types."""
    rng = np.random.default_rng(seed)
    spins = np.where(rng.random((16, 16)) < 0.5, 1, -1).astype(np.int8)
    assert lyapunov_energy(spins, 2) == lyapunov_energy(-spins, 2)
    assert np.array_equal(
        monochromatic_radius_map(spins, max_radius=3),
        monochromatic_radius_map(-spins, max_radius=3),
    )


@COMMON_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
def test_almost_monochromatic_radius_dominates_monochromatic_radius(seed, threshold):
    rng = np.random.default_rng(seed)
    spins = np.where(rng.random((14, 14)) < 0.5, 1, -1).astype(np.int8)
    mono = monochromatic_radius_map(spins, max_radius=3)
    almost = almost_monochromatic_radius_map(spins, threshold, max_radius=3)
    assert np.all(almost >= mono)


@COMMON_SETTINGS
@given(
    threshold_a=st.floats(min_value=0.0, max_value=1.0),
    threshold_b=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_almost_monochromatic_radius_monotone_in_threshold(threshold_a, threshold_b, seed):
    low, high = sorted((threshold_a, threshold_b))
    rng = np.random.default_rng(seed)
    spins = np.where(rng.random((14, 14)) < 0.5, 1, -1).astype(np.int8)
    strict = almost_monochromatic_radius_map(spins, low, max_radius=3)
    loose = almost_monochromatic_radius_map(spins, high, max_radius=3)
    assert np.all(loose >= strict)


@COMMON_SETTINGS
@given(x=st.floats(min_value=0.0, max_value=0.5))
def test_binary_entropy_symmetry_property(x):
    assert binary_entropy(x) == pytest.approx(binary_entropy(1.0 - x), abs=1e-12)


@COMMON_SETTINGS
@given(
    config=config_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_happiness_is_monotone_in_same_type_neighbors(config, seed):
    """Adding a same-type agent to a neighbourhood never makes its centre unhappy.

    This is the monotonicity that underlies the paper's FKG-based arguments:
    we flip a random minority neighbour of a happy agent to the agent's own
    type and check the agent stays happy.
    """
    state = ModelState(config, random_configuration(config, seed=seed))
    rng = np.random.default_rng(seed)
    happy_sites = np.argwhere(state.happy_mask())
    if happy_sites.size == 0:
        return
    row, col = happy_sites[rng.integers(0, len(happy_sites))]
    row, col = int(row), int(col)
    agent_type = state.grid.get(row, col)
    # Find an opposite-type agent inside the neighbourhood.
    w = config.horizon
    for dr in range(-w, w + 1):
        for dc in range(-w, w + 1):
            if (dr, dc) == (0, 0):
                continue
            r, c = (row + dr) % config.n_rows, (col + dc) % config.n_cols
            if state.grid.get(r, c) != agent_type:
                state.apply_flip(r, c)
                assert state.is_happy(row, col)
                return
