"""Tests for the a(tau)/b(tau) exponent multipliers (Figure 3)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.theory.exponents import (
    expected_region_size_bounds,
    figure3_curves,
    is_monotone_on_half_interval,
    lower_exponent,
    upper_exponent,
)
from repro.theory.thresholds import tau1, tau2, trigger_epsilon


class TestExponentValues:
    def test_lower_below_upper(self):
        for tau in (0.36, 0.40, 0.44, 0.48):
            assert lower_exponent(tau) < upper_exponent(tau)

    def test_both_positive_in_theorem_range(self):
        for tau in np.linspace(tau2() + 0.01, 0.49, 10):
            assert lower_exponent(float(tau)) > 0
            assert upper_exponent(float(tau)) > 0

    def test_symmetric_about_half(self):
        assert lower_exponent(0.45) == pytest.approx(lower_exponent(0.55))
        assert upper_exponent(0.44) == pytest.approx(upper_exponent(0.56))

    def test_formula_lower(self):
        tau = 0.46
        eps = trigger_epsilon(tau)
        from repro.theory.entropy import binary_entropy_complement

        expected = (1.0 - (2 * eps + eps**2)) * binary_entropy_complement(tau)
        assert lower_exponent(tau) == pytest.approx(expected)

    def test_formula_upper(self):
        tau = 0.46
        eps = trigger_epsilon(tau)
        from repro.theory.entropy import binary_entropy_complement

        expected = 1.5 * (1 + eps) ** 2 * binary_entropy_complement(tau)
        assert upper_exponent(tau) == pytest.approx(expected)

    def test_explicit_epsilon_prime_accepted(self):
        value = lower_exponent(0.46, epsilon_prime=0.3)
        assert value > 0

    def test_epsilon_prime_below_infimum_rejected(self):
        with pytest.raises(ConfigurationError):
            lower_exponent(0.40, epsilon_prime=0.01)

    def test_finite_n_uses_tau_prime(self):
        asymptotic = lower_exponent(0.46)
        finite = lower_exponent(0.46, neighborhood_agents=25)
        # tau' < tau at finite N, so 1 - H(tau') is larger.
        assert finite > asymptotic

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            lower_exponent(0.0)
        with pytest.raises(ConfigurationError):
            upper_exponent(1.0)


class TestMonotonicity:
    def test_exponents_decrease_towards_half_from_below(self):
        taus = np.linspace(tau1() + 0.005, 0.495, 12)
        lower = [lower_exponent(float(t)) for t in taus]
        upper = [upper_exponent(float(t)) for t in taus]
        assert all(b <= a + 1e-12 for a, b in zip(lower, lower[1:]))
        assert all(b <= a + 1e-12 for a, b in zip(upper, upper[1:]))

    def test_is_monotone_helper_detects_figure3_shape(self):
        curve = figure3_curves()
        assert is_monotone_on_half_interval(curve.lower, curve.taus)
        assert is_monotone_on_half_interval(curve.upper, curve.taus)

    def test_is_monotone_helper_rejects_wrong_shape(self):
        taus = np.array([0.40, 0.45, 0.48])
        values = np.array([0.1, 0.5, 0.2])
        assert not is_monotone_on_half_interval(values, taus)


class TestCurvesAndBounds:
    def test_curve_spans_both_sides(self):
        curve = figure3_curves()
        assert (curve.taus < 0.5).any()
        assert (curve.taus > 0.5).any()
        assert curve.lower.shape == curve.taus.shape
        assert curve.upper.shape == curve.taus.shape

    def test_curve_rows_export(self):
        curve = figure3_curves(taus=np.array([0.45, 0.55]))
        rows = curve.as_rows()
        assert len(rows) == 2
        assert set(rows[0]) == {"tau", "a", "b"}

    def test_region_size_bounds_ordered(self):
        lower, upper = expected_region_size_bounds(0.46, 49)
        assert 1.0 < lower < upper

    def test_region_size_bounds_grow_with_n(self):
        small = expected_region_size_bounds(0.46, 25)
        large = expected_region_size_bounds(0.46, 81)
        assert large[0] > small[0]
        assert large[1] > small[1]
