"""Tests for annular and chemical firewalls."""

import numpy as np
import pytest

from repro.analysis.firewall import (
    check_firewall_robustness,
    default_firewall_width,
    firewall_agent_type,
    firewall_mask,
    has_chemical_firewall,
    is_enclosed_by_good_blocks,
    is_monochromatic_firewall,
    run_with_adversarial_exterior,
)
from repro.core.config import ModelConfig
from repro.core.initializer import planted_annulus_configuration, random_configuration
from repro.errors import AnalysisError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    # tau = 0.40 keeps the finite-size annulus check away from the discrete
    # corner cases documented in the firewall experiment.
    return ModelConfig.square(side=48, horizon=2, tau=0.40)


CENTER = (24, 24)
RADIUS = 10.0


class TestMaskAndDetection:
    def test_default_width(self, config):
        assert default_firewall_width(config) == pytest.approx(np.sqrt(2.0) * 2)

    def test_mask_is_annulus(self, config):
        mask = firewall_mask(config, CENTER, RADIUS)
        assert not mask[CENTER]
        assert mask[24, 24 + 9]
        assert not mask[24, 24 + 12]

    def test_mask_rejects_tiny_radius(self, config):
        with pytest.raises(AnalysisError):
            firewall_mask(config, CENTER, 1.0)

    def test_monochromatic_detection(self, config):
        grid = planted_annulus_configuration(
            config, CENTER, RADIUS, annulus_type=AgentType.PLUS, seed=0
        )
        assert is_monochromatic_firewall(grid.spins, config, CENTER, RADIUS)
        assert firewall_agent_type(grid.spins, config, CENTER, RADIUS) is AgentType.PLUS

    def test_random_grid_not_a_firewall(self, config):
        spins = random_configuration(config, seed=1).spins
        assert not is_monochromatic_firewall(spins, config, CENTER, RADIUS)
        assert firewall_agent_type(spins, config, CENTER, RADIUS) is None

    def test_degenerate_empty_annulus_raises_in_both_detectors(self, config):
        # No lattice site has Euclidean distance in [1.1, 1.3]: the annulus is
        # empty.  Both detectors must treat that as a geometry error rather
        # than one raising and the other silently answering None.
        spins = random_configuration(config, seed=2).spins
        with pytest.raises(AnalysisError):
            is_monochromatic_firewall(spins, config, CENTER, 1.3, width=0.2)
        with pytest.raises(AnalysisError):
            firewall_agent_type(spins, config, CENTER, 1.3, width=0.2)


class TestRobustness:
    def test_planted_firewall_with_interior_holds(self, config):
        grid = planted_annulus_configuration(
            config,
            CENTER,
            RADIUS,
            annulus_type=AgentType.PLUS,
            interior_type=AgentType.PLUS,
            seed=2,
        )
        robustness = check_firewall_robustness(grid.spins, config, CENTER, RADIUS)
        assert robustness.firewall_monochromatic
        assert robustness.holds

    def test_mixed_annulus_reported_not_monochromatic(self, config):
        spins = random_configuration(config, seed=3).spins
        robustness = check_firewall_robustness(spins, config, CENTER, RADIUS)
        assert not robustness.firewall_monochromatic
        assert not robustness.holds

    def test_adversarial_dynamic_run_preserves_firewall(self, config):
        grid = planted_annulus_configuration(
            config,
            CENTER,
            RADIUS,
            annulus_type=AgentType.MINUS,
            interior_type=AgentType.MINUS,
            seed=4,
        )
        assert run_with_adversarial_exterior(grid.spins, config, CENTER, RADIUS, seed=5)

    def test_adversarial_run_requires_monochromatic_annulus(self, config):
        spins = random_configuration(config, seed=6).spins
        with pytest.raises(AnalysisError):
            run_with_adversarial_exterior(spins, config, CENTER, RADIUS, seed=7)

    def test_agent_counts_reported(self, config):
        grid = planted_annulus_configuration(
            config,
            CENTER,
            RADIUS,
            annulus_type=AgentType.PLUS,
            interior_type=AgentType.PLUS,
            seed=8,
        )
        robustness = check_firewall_robustness(grid.spins, config, CENTER, RADIUS)
        assert robustness.n_firewall_agents > 0
        assert robustness.n_interior_agents > 0


class TestChemicalFirewallEnclosure:
    def test_full_good_ring_encloses(self):
        good = np.zeros((9, 9), dtype=bool)
        good[2, 2:7] = True
        good[6, 2:7] = True
        good[2:7, 2] = True
        good[2:7, 6] = True
        assert is_enclosed_by_good_blocks(good, (4, 4))

    def test_broken_ring_does_not_enclose(self):
        good = np.zeros((9, 9), dtype=bool)
        good[2, 2:7] = True
        good[6, 2:7] = True
        good[2:7, 2] = True
        good[2:7, 6] = True
        good[2, 4] = False  # puncture the ring
        assert not is_enclosed_by_good_blocks(good, (4, 4))

    def test_no_good_blocks_does_not_enclose(self):
        assert not is_enclosed_by_good_blocks(np.zeros((7, 7), dtype=bool), (3, 3))

    def test_good_center_counts_as_enclosed(self):
        good = np.zeros((5, 5), dtype=bool)
        good[2, 2] = True
        assert is_enclosed_by_good_blocks(good, (2, 2))

    def test_all_good_lattice_encloses(self):
        assert is_enclosed_by_good_blocks(np.ones((7, 7), dtype=bool), (3, 3))

    def test_has_chemical_firewall_respects_annulus(self):
        good = np.zeros((11, 11), dtype=bool)
        good[3, 3:8] = True
        good[7, 3:8] = True
        good[3:8, 3] = True
        good[3:8, 7] = True
        assert has_chemical_firewall(good, (5, 5), inner_radius_blocks=1, outer_radius_blocks=4)
        # A ring hugging the centre inside the inner radius does not count.
        tight = np.zeros((11, 11), dtype=bool)
        tight[4, 4:7] = True
        tight[6, 4:7] = True
        tight[4:7, 4] = True
        tight[4:7, 6] = True
        assert not has_chemical_firewall(tight, (5, 5), inner_radius_blocks=2, outer_radius_blocks=4)

    def test_invalid_radii_rejected(self):
        with pytest.raises(AnalysisError):
            has_chemical_firewall(np.ones((5, 5), dtype=bool), (2, 2), 3, 2)
