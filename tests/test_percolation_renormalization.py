"""Tests for the block renormalisation substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.percolation.renormalization import BlockGrid, divisible_block_side


class TestBlockGrid:
    def test_shape_and_counts(self):
        blocks = BlockGrid((12, 18), 3)
        assert blocks.shape == (4, 6)
        assert blocks.n_blocks == 24

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockGrid((10, 10), 3)

    def test_invalid_block_side_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockGrid((10, 10), 0)

    def test_block_of_site(self):
        blocks = BlockGrid((12, 12), 4)
        assert blocks.block_of_site(0, 0) == (0, 0)
        assert blocks.block_of_site(5, 9) == (1, 2)
        assert blocks.block_of_site(13, -1) == (0, 2)  # wraps

    def test_site_slice_roundtrip(self):
        blocks = BlockGrid((12, 12), 4)
        array = np.arange(144).reshape(12, 12)
        rows, cols = blocks.site_slice(2, 1)
        assert array[rows, cols].shape == (4, 4)
        assert array[rows, cols][0, 0] == array[8, 4]

    def test_site_slice_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BlockGrid((12, 12), 4).site_slice(3, 0)

    def test_block_sums_match_manual(self):
        blocks = BlockGrid((6, 6), 3)
        array = np.arange(36).reshape(6, 6)
        sums = blocks.block_sums(array)
        assert sums.shape == (2, 2)
        assert sums[0, 0] == array[:3, :3].sum()
        assert sums[1, 1] == array[3:, 3:].sum()

    def test_block_means(self):
        blocks = BlockGrid((4, 4), 2)
        array = np.ones((4, 4)) * 3.0
        assert np.all(blocks.block_means(array) == 3.0)

    def test_block_all_and_any(self):
        blocks = BlockGrid((4, 4), 2)
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2, :2] = True
        mask[2, 2] = True
        assert blocks.block_all(mask)[0, 0]
        assert not blocks.block_all(mask)[1, 1]
        assert blocks.block_any(mask)[1, 1]
        assert not blocks.block_any(mask)[0, 1]

    def test_expand_inverse_of_block_means_for_constant_blocks(self):
        blocks = BlockGrid((6, 6), 3)
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        expanded = blocks.expand(values)
        assert expanded.shape == (6, 6)
        assert np.all(expanded[:3, :3] == 1.0)
        assert np.all(expanded[3:, 3:] == 4.0)

    def test_expand_shape_checked(self):
        with pytest.raises(ConfigurationError):
            BlockGrid((6, 6), 3).expand(np.ones((3, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockGrid((6, 6), 3).block_sums(np.ones((5, 6)))


class TestAdjacencyGraph:
    def test_periodic_graph_is_4_regular(self):
        graph = BlockGrid((12, 12), 3).adjacency_graph(periodic=True)
        assert graph.number_of_nodes() == 16
        assert all(degree == 4 for _, degree in graph.degree())

    def test_open_graph_has_boundary_nodes_with_fewer_edges(self):
        graph = BlockGrid((12, 12), 3).adjacency_graph(periodic=False)
        degrees = [degree for _, degree in graph.degree()]
        assert min(degrees) == 2  # corners
        assert max(degrees) == 4

    def test_graph_connected(self):
        graph = BlockGrid((9, 9), 3).adjacency_graph()
        assert nx.is_connected(graph)


class TestDivisibleBlockSide:
    def test_exact_divisor_kept(self):
        assert divisible_block_side(60, 6) == 6

    def test_rounds_down_to_divisor(self):
        assert divisible_block_side(60, 7) == 6

    def test_at_least_one(self):
        assert divisible_block_side(13, 5) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            divisible_block_side(0, 5)
