"""Tests for cluster labelling and radius statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PercolationError
from repro.percolation.cluster import (
    _label_clusters_reference,
    cluster_containing,
    cluster_radius,
    cluster_sizes,
    estimate_radius_tail,
    label_clusters,
    largest_cluster_size,
)


class TestLabelClusters:
    def test_empty_mask(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert np.all(labels == -1)
        assert largest_cluster_size(labels) == 0

    def test_full_mask_single_cluster(self):
        labels = label_clusters(np.ones((4, 4), dtype=bool))
        assert labels.max() == 0
        assert largest_cluster_size(labels) == 16

    def test_two_separate_clusters(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        labels = label_clusters(mask)
        assert labels[0, 0] != labels[4, 4]
        assert len(cluster_sizes(labels)) == 2

    def test_diagonal_not_connected(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True
        labels = label_clusters(mask)
        assert labels[0, 0] != labels[1, 1]

    def test_l_shape_is_one_cluster(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :3] = True
        mask[1, 0] = True
        labels = label_clusters(mask)
        assert largest_cluster_size(labels) == 4
        assert len(cluster_sizes(labels)) == 1

    def test_periodic_wraps_edges(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 2] = True
        mask[4, 2] = True
        open_labels = label_clusters(mask, periodic=False)
        torus_labels = label_clusters(mask, periodic=True)
        assert open_labels[0, 2] != open_labels[4, 2]
        assert torus_labels[0, 2] == torus_labels[4, 2]

    def test_non_2d_rejected(self):
        with pytest.raises(PercolationError):
            label_clusters(np.zeros(5, dtype=bool))

    def test_cluster_sizes_match_mask_total(self, rng):
        mask = rng.random((12, 12)) < 0.5
        labels = label_clusters(mask)
        assert cluster_sizes(labels).sum() == mask.sum()


class TestClusterQueries:
    def test_cluster_containing(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 1:4] = True
        labels = label_clusters(mask)
        member = cluster_containing(labels, (2, 2))
        assert member.sum() == 3
        assert member[2, 1] and member[2, 3]

    def test_cluster_containing_closed_site(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert cluster_containing(labels, (1, 1)).sum() == 0

    def test_cluster_radius_line(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[3, 1:6] = True
        labels = label_clusters(mask)
        assert cluster_radius(labels, (3, 3)) == 2
        assert cluster_radius(labels, (3, 1)) == 4

    def test_cluster_radius_of_closed_site(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert cluster_radius(labels, (0, 0)) == -1

    def test_cluster_radius_periodic(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[5, 0] = True
        labels = label_clusters(mask, periodic=True)
        assert cluster_radius(labels, (0, 0), periodic=True) == 1


class TestRadiusTail:
    def test_probabilities_monotone_in_radius(self, rng):
        estimate = estimate_radius_tail(0.4, [1, 2, 3], box_radius=5, n_trials=200, rng=rng)
        probs = estimate.probabilities
        assert np.all(np.diff(probs) <= 0)

    def test_subcritical_decay_rate_positive(self, rng):
        estimate = estimate_radius_tail(
            0.3, [1, 2, 3, 4], box_radius=6, n_trials=500, rng=rng
        )
        assert estimate.decay_rate() > 0

    def test_supercritical_tail_heavier_than_subcritical(self, rng):
        sub = estimate_radius_tail(0.3, [3], box_radius=5, n_trials=300, rng=rng)
        sup = estimate_radius_tail(0.8, [3], box_radius=5, n_trials=300, rng=rng)
        assert sup.probabilities[0] > sub.probabilities[0]

    def test_radius_exceeding_box_rejected(self, rng):
        with pytest.raises(PercolationError):
            estimate_radius_tail(0.4, [10], box_radius=5, n_trials=10, rng=rng)

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(PercolationError):
            estimate_radius_tail(1.4, [1], box_radius=5, n_trials=10, rng=rng)

    def test_decay_rate_requires_nonzero_tail(self, rng):
        estimate = estimate_radius_tail(0.01, [4, 5], box_radius=6, n_trials=50, rng=rng)
        if np.count_nonzero(estimate.probabilities > 0) < 2:
            with pytest.raises(PercolationError):
                estimate.decay_rate()


class TestLabelingEquivalence:
    """The vectorized labeller must be bitwise identical to the reference."""

    @settings(max_examples=120, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=24),
        n_cols=st.integers(min_value=1, max_value=24),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        periodic=st.booleans(),
    )
    def test_matches_reference_on_random_masks(self, n_rows, n_cols, density, seed, periodic):
        mask = np.random.default_rng(seed).random((n_rows, n_cols)) < density
        expected = _label_clusters_reference(mask, periodic=periodic)
        actual = label_clusters(mask, periodic=periodic)
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("periodic", [False, True])
    @pytest.mark.parametrize(
        "mask",
        [
            np.zeros((6, 6), dtype=bool),
            np.ones((6, 6), dtype=bool),
            np.ones((1, 9), dtype=bool),
            np.ones((9, 1), dtype=bool),
            np.array([[True, False, True, False, True]]),
            np.array([[True], [False], [True], [False]]),
            np.ones((1, 1), dtype=bool),
        ],
        ids=["empty", "full", "single-row", "single-col", "alt-row", "alt-col", "1x1"],
    )
    def test_matches_reference_on_edge_cases(self, mask, periodic):
        expected = _label_clusters_reference(mask, periodic=periodic)
        actual = label_clusters(mask, periodic=periodic)
        assert np.array_equal(actual, expected)

    def test_labels_ordered_by_first_appearance(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 3] = True   # first in row-major order -> label 0
        mask[1, 0] = True   # second -> label 1
        mask[3, 2] = True   # third -> label 2
        labels = label_clusters(mask)
        assert labels[0, 3] == 0 and labels[1, 0] == 1 and labels[3, 2] == 2

    def test_checkerboard_has_no_merges(self):
        mask = np.indices((8, 8)).sum(axis=0) % 2 == 0
        labels = label_clusters(mask, periodic=True)
        assert cluster_sizes(labels).tolist() == [1] * int(mask.sum())

    def test_reference_rejects_non_2d(self):
        with pytest.raises(PercolationError):
            _label_clusters_reference(np.zeros(4, dtype=bool))
