"""Tests for cluster labelling and radius statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PercolationError
from repro.percolation.cluster import (
    _estimate_radius_tail_reference,
    _label_clusters_reference,
    cluster_bounding_stats,
    cluster_containing,
    cluster_radii,
    cluster_radius,
    cluster_sizes,
    estimate_radius_tail,
    label_clusters,
    largest_cluster_size,
)


class TestLabelClusters:
    def test_empty_mask(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert np.all(labels == -1)
        assert largest_cluster_size(labels) == 0

    def test_full_mask_single_cluster(self):
        labels = label_clusters(np.ones((4, 4), dtype=bool))
        assert labels.max() == 0
        assert largest_cluster_size(labels) == 16

    def test_two_separate_clusters(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        labels = label_clusters(mask)
        assert labels[0, 0] != labels[4, 4]
        assert len(cluster_sizes(labels)) == 2

    def test_diagonal_not_connected(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        mask[1, 1] = True
        labels = label_clusters(mask)
        assert labels[0, 0] != labels[1, 1]

    def test_l_shape_is_one_cluster(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :3] = True
        mask[1, 0] = True
        labels = label_clusters(mask)
        assert largest_cluster_size(labels) == 4
        assert len(cluster_sizes(labels)) == 1

    def test_periodic_wraps_edges(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 2] = True
        mask[4, 2] = True
        open_labels = label_clusters(mask, periodic=False)
        torus_labels = label_clusters(mask, periodic=True)
        assert open_labels[0, 2] != open_labels[4, 2]
        assert torus_labels[0, 2] == torus_labels[4, 2]

    def test_non_2d_rejected(self):
        with pytest.raises(PercolationError):
            label_clusters(np.zeros(5, dtype=bool))

    def test_cluster_sizes_match_mask_total(self, rng):
        mask = rng.random((12, 12)) < 0.5
        labels = label_clusters(mask)
        assert cluster_sizes(labels).sum() == mask.sum()


class TestClusterQueries:
    def test_cluster_containing(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 1:4] = True
        labels = label_clusters(mask)
        member = cluster_containing(labels, (2, 2))
        assert member.sum() == 3
        assert member[2, 1] and member[2, 3]

    def test_cluster_containing_closed_site(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert cluster_containing(labels, (1, 1)).sum() == 0

    def test_cluster_radius_line(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[3, 1:6] = True
        labels = label_clusters(mask)
        assert cluster_radius(labels, (3, 3)) == 2
        assert cluster_radius(labels, (3, 1)) == 4

    def test_cluster_radius_of_closed_site(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert cluster_radius(labels, (0, 0)) == -1

    def test_cluster_radius_periodic(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[5, 0] = True
        labels = label_clusters(mask, periodic=True)
        assert cluster_radius(labels, (0, 0), periodic=True) == 1


class TestRadiusTail:
    def test_probabilities_monotone_in_radius(self, rng):
        estimate = estimate_radius_tail(0.4, [1, 2, 3], box_radius=5, n_trials=200, seed=rng)
        probs = estimate.probabilities
        assert np.all(np.diff(probs) <= 0)

    def test_subcritical_decay_rate_positive(self, rng):
        estimate = estimate_radius_tail(
            0.3, [1, 2, 3, 4], box_radius=6, n_trials=500, seed=rng
        )
        assert estimate.decay_rate() > 0

    def test_supercritical_tail_heavier_than_subcritical(self, rng):
        sub = estimate_radius_tail(0.3, [3], box_radius=5, n_trials=300, seed=rng)
        sup = estimate_radius_tail(0.8, [3], box_radius=5, n_trials=300, seed=rng)
        assert sup.probabilities[0] > sub.probabilities[0]

    def test_radius_exceeding_box_rejected(self, rng):
        with pytest.raises(PercolationError):
            estimate_radius_tail(0.4, [10], box_radius=5, n_trials=10, seed=rng)

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(PercolationError):
            estimate_radius_tail(1.4, [1], box_radius=5, n_trials=10, seed=rng)

    def test_decay_rate_requires_nonzero_tail(self, rng):
        estimate = estimate_radius_tail(0.01, [4, 5], box_radius=6, n_trials=50, seed=rng)
        if np.count_nonzero(estimate.probabilities > 0) < 2:
            with pytest.raises(PercolationError):
                estimate.decay_rate()

    def test_integer_seed_accepted(self):
        a = estimate_radius_tail(0.4, [1, 2], box_radius=4, n_trials=50, seed=11)
        b = estimate_radius_tail(0.4, [1, 2], box_radius=4, n_trials=50, seed=11)
        assert np.array_equal(a.probabilities, b.probabilities)

    def test_zero_trials_report_zero_tail(self):
        estimate = estimate_radius_tail(0.4, [1, 2], box_radius=4, n_trials=0, seed=0)
        assert estimate.n_trials == 0
        assert np.all(estimate.probabilities == 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        p_open=st.floats(min_value=0.0, max_value=1.0),
        box_radius=st.integers(min_value=1, max_value=5),
        n_trials=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batched_matches_loop_reference(self, p_open, box_radius, n_trials, seed):
        radii = list(range(1, box_radius + 1))
        batched = estimate_radius_tail(
            p_open, radii, box_radius=box_radius, n_trials=n_trials, seed=seed
        )
        loop = _estimate_radius_tail_reference(
            p_open, radii, box_radius=box_radius, n_trials=n_trials, seed=seed
        )
        assert np.array_equal(batched.probabilities, loop.probabilities)
        assert batched.n_trials == loop.n_trials
        assert np.array_equal(batched.radii, loop.radii)

    def test_chunk_boundaries_preserve_the_stream(self, monkeypatch):
        # The memory-bounding chunk loop must consume the RNG stream exactly
        # like one big draw; a tiny chunk budget forces many boundaries.
        import repro.percolation.cluster as cluster_module

        monkeypatch.setattr(cluster_module, "_RADIUS_TAIL_CHUNK_CELLS", 200)
        chunked = estimate_radius_tail(0.45, [1, 2, 3], box_radius=4, n_trials=57, seed=9)
        loop = _estimate_radius_tail_reference(
            0.45, [1, 2, 3], box_radius=4, n_trials=57, seed=9
        )
        assert np.array_equal(chunked.probabilities, loop.probabilities)


def _first_site_centers(labels: np.ndarray) -> np.ndarray:
    """Each cluster's first row-major site, as a (n_clusters, 2) array."""
    n_clusters = int(labels.max()) + 1 if labels.size else 0
    centers = np.zeros((max(n_clusters, 0), 2), dtype=np.int64)
    seen: set[int] = set()
    for row in range(labels.shape[0]):
        for col in range(labels.shape[1]):
            label = int(labels[row, col])
            if label >= 0 and label not in seen:
                centers[label] = (row, col)
                seen.add(label)
    return centers


class TestClusterRadiiBatch:
    """cluster_radii must agree with per-site cluster_radius loops.

    ``cluster_radius`` extracts one cluster's members and reduces their
    distances directly — an independent computation from the label-indexed
    ``np.maximum.at`` scatter of ``cluster_radii`` — so the loop is a
    genuine equivalence oracle for the batch.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=18),
        n_cols=st.integers(min_value=1, max_value=18),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        periodic=st.booleans(),
    )
    def test_matches_per_site_loop(self, n_rows, n_cols, density, seed, periodic):
        mask = np.random.default_rng(seed).random((n_rows, n_cols)) < density
        labels = label_clusters(mask, periodic=periodic)
        centers = _first_site_centers(labels)
        batched = cluster_radii(labels, centers, periodic=periodic)
        for label, center in enumerate(centers):
            assert batched[label] == cluster_radius(
                labels, tuple(center), periodic=periodic
            )

    def test_empty_labels_give_empty_radii(self):
        labels = label_clusters(np.zeros((4, 4), dtype=bool))
        assert cluster_radii(labels, np.zeros((0, 2), dtype=np.int64)).size == 0

    def test_center_shape_validated(self):
        labels = label_clusters(np.ones((3, 3), dtype=bool))
        with pytest.raises(PercolationError):
            cluster_radii(labels, np.zeros((5, 2), dtype=np.int64))

    def test_non_2d_labels_rejected(self):
        with pytest.raises(PercolationError):
            cluster_radii(np.zeros(4, dtype=np.int64), np.zeros((1, 2)))

    def test_periodic_wraps_distances(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[5, 0] = True
        labels = label_clusters(mask, periodic=True)
        centers = np.array([[0, 0]], dtype=np.int64)
        assert cluster_radii(labels, centers, periodic=True)[0] == 1
        assert cluster_radii(labels, centers, periodic=False)[0] == 5


class TestClusterBoundingStats:
    def test_sizes_match_cluster_sizes(self, rng):
        mask = rng.random((14, 10)) < 0.5
        labels = label_clusters(mask)
        stats = cluster_bounding_stats(labels)
        assert np.array_equal(stats.sizes, cluster_sizes(labels))

    def test_bounding_boxes_cover_members(self, rng):
        mask = rng.random((12, 12)) < 0.55
        labels = label_clusters(mask)
        stats = cluster_bounding_stats(labels)
        for label in range(int(labels.max()) + 1):
            rows, cols = np.nonzero(labels == label)
            assert stats.min_row[label] == rows.min()
            assert stats.max_row[label] == rows.max()
            assert stats.min_col[label] == cols.min()
            assert stats.max_col[label] == cols.max()
            assert stats.heights[label] == rows.max() - rows.min() + 1
            assert stats.widths[label] == cols.max() - cols.min() + 1

    def test_empty_mask(self):
        labels = label_clusters(np.zeros((3, 3), dtype=bool))
        stats = cluster_bounding_stats(labels)
        assert stats.sizes.size == 0

    def test_non_2d_rejected(self):
        with pytest.raises(PercolationError):
            cluster_bounding_stats(np.zeros(4, dtype=np.int64))


class TestLabelingEquivalence:
    """The vectorized labeller must be bitwise identical to the reference."""

    @settings(max_examples=120, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=24),
        n_cols=st.integers(min_value=1, max_value=24),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        periodic=st.booleans(),
    )
    def test_matches_reference_on_random_masks(self, n_rows, n_cols, density, seed, periodic):
        mask = np.random.default_rng(seed).random((n_rows, n_cols)) < density
        expected = _label_clusters_reference(mask, periodic=periodic)
        actual = label_clusters(mask, periodic=periodic)
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("periodic", [False, True])
    @pytest.mark.parametrize(
        "mask",
        [
            np.zeros((6, 6), dtype=bool),
            np.ones((6, 6), dtype=bool),
            np.ones((1, 9), dtype=bool),
            np.ones((9, 1), dtype=bool),
            np.array([[True, False, True, False, True]]),
            np.array([[True], [False], [True], [False]]),
            np.ones((1, 1), dtype=bool),
        ],
        ids=["empty", "full", "single-row", "single-col", "alt-row", "alt-col", "1x1"],
    )
    def test_matches_reference_on_edge_cases(self, mask, periodic):
        expected = _label_clusters_reference(mask, periodic=periodic)
        actual = label_clusters(mask, periodic=periodic)
        assert np.array_equal(actual, expected)

    def test_labels_ordered_by_first_appearance(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 3] = True   # first in row-major order -> label 0
        mask[1, 0] = True   # second -> label 1
        mask[3, 2] = True   # third -> label 2
        labels = label_clusters(mask)
        assert labels[0, 3] == 0 and labels[1, 0] == 1 and labels[3, 2] == 2

    def test_checkerboard_has_no_merges(self):
        mask = np.indices((8, 8)).sum(axis=0) % 2 == 0
        labels = label_clusters(mask, periodic=True)
        assert cluster_sizes(labels).tolist() == [1] * int(mask.sum())

    def test_reference_rejects_non_2d(self):
        with pytest.raises(PercolationError):
            _label_clusters_reference(np.zeros(4, dtype=bool))
