"""Tests for the torus grid substrate."""

import numpy as np
import pytest

from repro.core.grid import TorusGrid
from repro.errors import ConfigurationError
from repro.types import AgentType
from tests.conftest import brute_force_window_sum


class TestConstruction:
    def test_from_array_copies(self):
        source = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        grid = TorusGrid(source)
        source[0, 0] = -1
        assert grid.get(0, 0) == 1

    def test_filled(self):
        grid = TorusGrid.filled(4, 5, AgentType.MINUS)
        assert grid.shape == (4, 5)
        assert grid.count(AgentType.MINUS) == 20
        assert grid.count(AgentType.PLUS) == 0

    def test_filled_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            TorusGrid.filled(0, 5, AgentType.PLUS)

    def test_from_random_density_zero_and_one(self, rng):
        all_minus = TorusGrid.from_random(10, 10, 0.0, rng)
        all_plus = TorusGrid.from_random(10, 10, 1.0, rng)
        assert all_minus.count(AgentType.PLUS) == 0
        assert all_plus.count(AgentType.PLUS) == 100

    def test_from_random_density_half_is_balanced(self, rng):
        grid = TorusGrid.from_random(60, 60, 0.5, rng)
        assert 0.4 < grid.plus_fraction() < 0.6

    def test_from_random_invalid_density(self, rng):
        with pytest.raises(ConfigurationError):
            TorusGrid.from_random(10, 10, 1.5, rng)

    def test_rejects_invalid_values(self):
        with pytest.raises(ConfigurationError):
            TorusGrid(np.zeros((3, 3), dtype=int))


class TestAccessors:
    def test_get_set_wraps(self):
        grid = TorusGrid.filled(5, 5, AgentType.PLUS)
        grid.set(6, 7, -1)  # wraps to (1, 2)
        assert grid.get(1, 2) == -1
        assert grid.get(-4, -3) == -1

    def test_set_rejects_invalid_value(self):
        grid = TorusGrid.filled(5, 5, AgentType.PLUS)
        with pytest.raises(ConfigurationError):
            grid.set(0, 0, 2)

    def test_flip_returns_new_value(self):
        grid = TorusGrid.filled(5, 5, AgentType.PLUS)
        assert grid.flip(2, 2) == -1
        assert grid.get(2, 2) == -1
        assert grid.flip(2, 2) == 1

    def test_window_shape_and_wrap(self):
        grid = TorusGrid.filled(6, 6, AgentType.PLUS)
        grid.set(5, 5, -1)
        window = grid.window(0, 0, 1)
        assert window.shape == (3, 3)
        assert window[0, 0] == -1  # the wrapped corner

    def test_set_window_roundtrip(self):
        grid = TorusGrid.filled(8, 8, AgentType.PLUS)
        patch = np.full((3, 3), -1, dtype=np.int8)
        grid.set_window(4, 4, patch)
        assert np.array_equal(grid.window(4, 4, 1), patch)

    def test_set_window_rejects_even_side(self):
        grid = TorusGrid.filled(8, 8, AgentType.PLUS)
        with pytest.raises(ConfigurationError):
            grid.set_window(4, 4, np.ones((2, 2), dtype=np.int8))

    def test_set_square(self):
        grid = TorusGrid.filled(9, 9, AgentType.MINUS)
        grid.set_square((4, 4), 1, AgentType.PLUS)
        assert grid.count(AgentType.PLUS) == 9

    def test_set_mask_shape_checked(self):
        grid = TorusGrid.filled(5, 5, AgentType.PLUS)
        with pytest.raises(ConfigurationError):
            grid.set_mask(np.ones((4, 4), dtype=bool), AgentType.MINUS)


class TestCounts:
    def test_magnetization(self):
        grid = TorusGrid.filled(4, 4, AgentType.PLUS)
        assert grid.magnetization() == 1.0
        grid.set_square((0, 0), 0, AgentType.MINUS)
        assert grid.magnetization() == pytest.approx((15 - 1) / 16)

    def test_plus_neighborhood_counts_uniform(self):
        grid = TorusGrid.filled(7, 7, AgentType.PLUS)
        counts = grid.plus_neighborhood_counts(1)
        assert np.all(counts == 9)

    def test_plus_counts_match_brute_force(self, rng):
        grid = TorusGrid.from_random(12, 12, 0.5, rng)
        counts = grid.plus_neighborhood_counts(2)
        indicator = (grid.spins == 1).astype(int)
        for row, col in [(0, 0), (3, 7), (11, 11)]:
            assert counts[row, col] == brute_force_window_sum(indicator, row, col, 2)

    def test_same_type_counts_complementary(self, rng):
        grid = TorusGrid.from_random(10, 10, 0.5, rng)
        same = grid.same_type_neighborhood_counts(1)
        plus = grid.plus_neighborhood_counts(1)
        # For a -1 agent, same + plus == 9; for a +1 agent same == plus.
        minus_mask = grid.spins == -1
        assert np.all(same[minus_mask] + plus[minus_mask] == 9)
        assert np.all(same[~minus_mask] == plus[~minus_mask])


class TestMisc:
    def test_copy_is_independent(self):
        grid = TorusGrid.filled(5, 5, AgentType.PLUS)
        clone = grid.copy()
        clone.flip(0, 0)
        assert grid.get(0, 0) == 1

    def test_equality(self):
        a = TorusGrid.filled(4, 4, AgentType.PLUS)
        b = TorusGrid.filled(4, 4, AgentType.PLUS)
        assert a == b
        b.flip(1, 1)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TorusGrid.filled(3, 3, AgentType.PLUS))

    def test_flat_index_roundtrip(self):
        grid = TorusGrid.filled(6, 7, AgentType.PLUS)
        for site in [(0, 0), (3, 4), (5, 6)]:
            assert grid.site_of(grid.flat_index(*site)) == site

    def test_site_of_out_of_range(self):
        grid = TorusGrid.filled(3, 3, AgentType.PLUS)
        with pytest.raises(IndexError):
            grid.site_of(9)

    def test_sites_iterates_all(self):
        grid = TorusGrid.filled(3, 4, AgentType.PLUS)
        assert len(list(grid.sites())) == 12
