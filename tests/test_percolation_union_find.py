"""Tests for the union-find structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.percolation.union_find import UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    def test_union_connects(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 4

    def test_union_same_component_returns_false(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 4

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(5) == 1

    def test_component_sizes_sum_to_total(self):
        uf = UnionFind(10)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        sizes = uf.component_sizes()
        assert sum(sizes.values()) == 10
        assert sorted(sizes.values(), reverse=True)[:2] == [3, 2]

    def test_labels_consistent_with_connectivity(self):
        uf = UnionFind(6)
        uf.union(1, 4)
        uf.union(2, 5)
        labels = uf.labels()
        assert labels[1] == labels[4]
        assert labels[2] == labels[5]
        assert labels[1] != labels[2]


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=29), st.integers(min_value=0, max_value=29)),
        max_size=60,
    ),
)
def test_matches_reference_connectivity(n, edges):
    """Union-find connectivity matches a brute-force reachability computation."""
    edges = [(a % n, b % n) for a, b in edges]
    uf = UnionFind(n)
    adjacency = {i: {i} for i in range(n)}
    for a, b in edges:
        uf.union(a, b)
    # Brute-force transitive closure.
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    for i in range(n):
        for j in range(n):
            assert uf.connected(i, j) == (find(i) == find(j))


class TestBatchedOps:
    def test_find_many_matches_scalar_find(self):
        uf = UnionFind(12)
        for a, b in [(0, 1), (1, 2), (5, 6), (9, 10), (10, 11)]:
            uf.union(a, b)
        roots = uf.find_many(np.arange(12))
        assert roots.tolist() == [uf.find(i) for i in range(12)]

    def test_find_many_empty(self):
        uf = UnionFind(4)
        assert uf.find_many(np.array([], dtype=np.int64)).size == 0

    def test_find_many_compresses_paths(self):
        uf = UnionFind(8)
        uf.union_many(np.array([1, 2, 3]), np.array([2, 3, 4]))
        roots = uf.find_many(np.arange(8))
        # after compression every queried element points straight at its root
        assert all(uf._parent[i] == roots[i] for i in range(8))

    def test_union_many_counts_merges(self):
        uf = UnionFind(6)
        merges = uf.union_many(np.array([0, 1, 0, 4]), np.array([1, 2, 2, 4]))
        assert merges == 2
        assert uf.n_components == 4

    def test_union_many_empty_is_noop(self):
        uf = UnionFind(5)
        assert uf.union_many(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0
        assert uf.n_components == 5

    def test_union_many_mismatched_lengths_rejected(self):
        uf = UnionFind(5)
        with pytest.raises(ValueError):
            uf.union_many(np.array([0, 1]), np.array([2]))

    def test_union_many_self_edges_are_noops(self):
        uf = UnionFind(5)
        assert uf.union_many(np.array([0, 1, 2]), np.array([0, 1, 2])) == 0
        assert uf.n_components == 5

    def test_batched_representative_is_minimum_index(self):
        """Fresh structures driven only by union_many root at the min element."""
        uf = UnionFind(10)
        uf.union_many(np.array([7, 5, 9]), np.array([5, 3, 7]))
        assert uf.find(9) == 3

    def test_sizes_refresh_after_batched_union(self):
        uf = UnionFind(8)
        uf.union_many(np.array([0, 1, 5]), np.array([1, 2, 6]))
        assert uf.component_size(2) == 3
        assert uf.component_size(5) == 2
        assert uf.component_size(7) == 1
        assert sum(uf.component_sizes().values()) == 8

    def test_scalar_union_after_batched_union(self):
        uf = UnionFind(8)
        uf.union_many(np.array([0, 3]), np.array([1, 4]))
        assert uf.union(1, 3)
        assert uf.connected(0, 4)
        assert uf.n_components == 8 - 3
        assert uf.component_size(0) == 4


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=39), st.integers(min_value=0, max_value=39)),
        max_size=80,
    ),
    split=st.integers(min_value=0, max_value=80),
)
def test_batched_and_scalar_unions_build_the_same_partition(n, edges, split):
    """Mixing union_many and scalar union yields the scalar-only partition."""
    edges = [(a % n, b % n) for a, b in edges]
    scalar = UnionFind(n)
    for a, b in edges:
        scalar.union(a, b)
    mixed = UnionFind(n)
    batch, rest = edges[:split], edges[split:]
    if batch:
        arr = np.asarray(batch, dtype=np.int64)
        mixed.union_many(arr[:, 0], arr[:, 1])
    for a, b in rest:
        mixed.union(a, b)
    assert mixed.n_components == scalar.n_components
    for i in range(n):
        assert mixed.component_size(i) == scalar.component_size(i)
    scalar_labels = scalar.labels()
    mixed_labels = mixed.find_many(np.arange(n))
    for a, b in edges:
        assert (scalar_labels[a] == scalar_labels[b]) == (mixed_labels[a] == mixed_labels[b])
