"""Tests for the union-find structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.percolation.union_find import UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    def test_union_connects(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 4

    def test_union_same_component_returns_false(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 4

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(5) == 1

    def test_component_sizes_sum_to_total(self):
        uf = UnionFind(10)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        sizes = uf.component_sizes()
        assert sum(sizes.values()) == 10
        assert sorted(sizes.values(), reverse=True)[:2] == [3, 2]

    def test_labels_consistent_with_connectivity(self):
        uf = UnionFind(6)
        uf.union(1, 4)
        uf.union(2, 5)
        labels = uf.labels()
        assert labels[1] == labels[4]
        assert labels[2] == labels[5]
        assert labels[1] != labels[2]


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=29), st.integers(min_value=0, max_value=29)),
        max_size=60,
    ),
)
def test_matches_reference_connectivity(n, edges):
    """Union-find connectivity matches a brute-force reachability computation."""
    edges = [(a % n, b % n) for a, b in edges]
    uf = UnionFind(n)
    adjacency = {i: {i} for i in range(n)}
    for a, b in edges:
        uf.union(a, b)
    # Brute-force transitive closure.
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    for i in range(n):
        for j in range(n):
            assert uf.connected(i, j) == (find(i) == find(j))
