"""Tests for the paper's thresholds tau1, tau2, f(tau) and rescaled intolerances."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.theory.thresholds import (
    interval_widths,
    mirrored_tau,
    tau1,
    tau1_equation,
    tau2,
    tau2_equation,
    tau_bar,
    tau_hat,
    tau_prime,
    trigger_epsilon,
    trigger_epsilon_curve,
)


class TestTau1:
    def test_paper_value(self):
        # The paper reports tau1 ≈ 0.433.
        assert tau1() == pytest.approx(0.433, abs=0.001)

    def test_is_root_of_equation_one(self):
        assert tau1_equation(tau1()) == pytest.approx(0.0, abs=1e-9)

    def test_equation_sign_change(self):
        assert tau1_equation(0.40) < 0
        assert tau1_equation(0.49) > 0

    def test_equation_domain_checked(self):
        with pytest.raises(ConfigurationError):
            tau1_equation(0.8)

    def test_cached_value_stable(self):
        assert tau1() == tau1()


class TestTau2:
    def test_exact_rational_value(self):
        # 1024 x^2 - 384 x + 11 factors with roots 1/32 and 11/32.
        assert tau2() == pytest.approx(11.0 / 32.0)

    def test_paper_value(self):
        assert tau2() == pytest.approx(0.344, abs=0.001)

    def test_is_root_of_equation_three(self):
        assert tau2_equation(tau2()) == pytest.approx(0.0, abs=1e-6)

    def test_other_root_not_chosen(self):
        assert tau2() > 0.1

    def test_ordering_of_thresholds(self):
        assert 0.25 < tau2() < tau1() < 0.5


class TestIntervalWidths:
    def test_paper_widths(self):
        widths = interval_widths()
        # The paper quotes ≈ 0.134 and ≈ 0.312.
        assert widths["monochromatic"] == pytest.approx(0.134, abs=0.002)
        assert widths["almost_monochromatic"] == pytest.approx(0.3125, abs=0.001)

    def test_almost_interval_contains_monochromatic(self):
        widths = interval_widths()
        assert widths["almost_monochromatic"] > widths["monochromatic"]


class TestTriggerEpsilon:
    def test_vanishes_at_half(self):
        assert trigger_epsilon(0.5) == pytest.approx(0.0)

    def test_increases_as_tau_decreases(self):
        values = [trigger_epsilon(t) for t in (0.48, 0.45, 0.40, 0.36)]
        assert values == sorted(values)

    def test_below_half_for_theorem_range(self):
        # The paper notes f(tau) < 1/2 on (tau2, 1/2).
        for tau in np.linspace(tau2() + 1e-3, 0.499, 20):
            assert 0.0 <= trigger_epsilon(float(tau)) < 0.5

    def test_symmetry_above_half(self):
        assert trigger_epsilon(0.55) == pytest.approx(trigger_epsilon(0.45))

    def test_hand_computed_value(self):
        # At tau = 0.45: delta = -0.05, 3 tau + 0.5 = 1.85.
        delta = -0.05
        expected = (3 * delta + np.sqrt(9 * delta**2 - 7 * delta * 1.85)) / (2 * 1.85)
        assert trigger_epsilon(0.45) == pytest.approx(expected)

    def test_curve_matches_scalar(self):
        taus = np.array([0.40, 0.45, 0.48])
        curve = trigger_epsilon_curve(taus)
        for tau, value in zip(taus, curve):
            assert value == pytest.approx(trigger_epsilon(float(tau)))

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            trigger_epsilon(0.0)


class TestRescaledIntolerances:
    def test_tau_prime_formula(self):
        assert tau_prime(0.45, 25) == pytest.approx((0.45 * 25 - 2) / 24)

    def test_tau_prime_approaches_tau(self):
        assert tau_prime(0.45, 10**6) == pytest.approx(0.45, abs=1e-4)

    def test_tau_prime_clamped_at_zero(self):
        assert tau_prime(0.01, 9) == 0.0

    def test_tau_prime_requires_two_agents(self):
        with pytest.raises(ConfigurationError):
            tau_prime(0.45, 1)

    def test_tau_hat_below_tau(self):
        assert tau_hat(0.45, 49) < 0.45

    def test_tau_hat_approaches_tau(self):
        assert tau_hat(0.45, 10**8) == pytest.approx(0.45, abs=1e-3)

    def test_tau_hat_zero_for_zero_tau(self):
        assert tau_hat(0.0, 49) == 0.0

    def test_tau_hat_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            tau_hat(0.45, 49, epsilon=0.7)

    def test_tau_bar_formula(self):
        assert tau_bar(0.6, 25) == pytest.approx(1.0 - 0.6 + 2.0 / 25)

    def test_tau_bar_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            tau_bar(1.5, 25)

    def test_mirrored_tau(self):
        assert mirrored_tau(0.3) == 0.3
        assert mirrored_tau(0.7) == pytest.approx(0.3)
        assert mirrored_tau(0.5) == 0.5

    def test_mirrored_tau_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            mirrored_tau(-0.1)
