"""Differential tests for the query layer: parsing, distance, interpolation.

The hypothesis properties pin the lookup semantics the docs promise:

- an exact-match query returns the stored aggregates *bit-for-bit*;
- every bilinearly interpolated metric is bounded by the extremes of the
  corner cells it blends (convex combination);
- answers are deterministic under any shuffling of the store's cell order
  (lookup depends on the cell *set*, never on storage order).

Synthetic stores are fabricated by writing a ``summary.json`` directly —
the query layer reads only the summary, so no simulation is needed.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ModelConfig
from repro.errors import QueryMiss, ServingError
from repro.experiments.checkpoint import SUMMARY_FORMAT, SUMMARY_NAME
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.spec import SweepSpec
from repro.serving import ArtifactStore, QueryEngine, parse_query
from repro.serving.query import axis_scales, normalized_distance


def make_cell(index, tau, w, rho, **metrics):
    """One synthetic summary cell with a ``score`` metric per kwargs."""
    return {
        "index": index,
        "name": f"cell{index}",
        "spec_hash": f"hash{index:04d}",
        "params": {"tau": tau, "w": w, "rho": rho},
        "n_replicates": 2,
        "metrics": {
            name: {
                "count": 2.0,
                "mean": value,
                "std": 0.0,
                "min": value,
                "max": value,
                "ci_low": value,
                "ci_high": value,
            }
            for name, value in metrics.items()
        },
        "failure": None,
    }


def write_store(directory, cells):
    """Fabricate a store directory holding only a ``summary.json``."""
    directory.mkdir(exist_ok=True)
    payload = {
        "format": SUMMARY_FORMAT,
        "version": 1,
        "n_cells": len(cells),
        "n_summarized": len(cells),
        "n_failed": 0,
        "n_missing": 0,
        "complete": True,
        "cells": cells,
    }
    (directory / SUMMARY_NAME).write_text(json.dumps(payload))
    return directory


def grid_cells(taus=(0.3, 0.5), rhos=(0.4, 0.6), w=2, values=None):
    """A full (tau, rho) grid at one horizon, with given ``score`` values."""
    cells = []
    for i, tau in enumerate(taus):
        for j, rho in enumerate(rhos):
            index = i * len(rhos) + j
            value = values[index] if values is not None else float(index)
            cells.append(make_cell(index, tau, w, rho, score=value))
    return cells


class TestParseQuery:
    def test_parses_canonical_string(self):
        assert parse_query("rho=0.4,tau=0.55,w=2") == {
            "rho": 0.4,
            "tau": 0.55,
            "w": 2.0,
        }

    def test_aliases_and_whitespace(self):
        assert parse_query(" density=0.4 , HORIZON=2 ") == {"rho": 0.4, "w": 2.0}
        assert parse_query("p=0.5") == {"rho": 0.5}

    def test_rejects_unknown_axis(self):
        with pytest.raises(ServingError, match="unknown query axis"):
            parse_query("sigma=1")

    def test_rejects_duplicate_axis_even_via_alias(self):
        with pytest.raises(ServingError, match="more than once"):
            parse_query("rho=0.4,density=0.5")

    def test_rejects_non_numeric_and_malformed(self):
        with pytest.raises(ServingError, match="not a number"):
            parse_query("tau=abc")
        with pytest.raises(ServingError, match="axis=value"):
            parse_query("tau")
        with pytest.raises(ServingError, match="empty query"):
            parse_query("  ,  ")


class TestResolvePoint:
    def test_fills_axis_pinned_by_store(self, tmp_path):
        store = write_store(tmp_path / "s", grid_cells())  # single w=2
        engine = QueryEngine(store)
        assert engine.resolve_point("rho=0.4,tau=0.3") == {
            "rho": 0.4,
            "tau": 0.3,
            "w": 2.0,
        }

    def test_ambiguous_axis_is_an_error(self, tmp_path):
        cells = grid_cells(w=1) + [
            make_cell(10, 0.3, 2, 0.4, score=1.0)
        ]  # two horizons
        engine = QueryEngine(write_store(tmp_path / "s", cells))
        with pytest.raises(ServingError, match="omits axis 'w'"):
            engine.resolve_point("rho=0.4,tau=0.3")

    def test_dict_queries_accept_aliases(self, tmp_path):
        engine = QueryEngine(write_store(tmp_path / "s", grid_cells()))
        point = engine.resolve_point({"density": 0.4, "tau": 0.3, "horizon": 2})
        assert point == {"rho": 0.4, "tau": 0.3, "w": 2.0}


class TestDistanceMetric:
    def test_scales_are_per_axis_ranges(self):
        cells = grid_cells(taus=(0.2, 0.6), rhos=(0.4, 0.9), w=2)
        assert axis_scales(cells) == {
            "tau": pytest.approx(0.4),
            "rho": pytest.approx(0.5),
            "w": 1.0,  # degenerate axis falls back to 1
        }

    def test_distance_is_normalized_euclidean(self):
        cells = grid_cells(taus=(0.2, 0.6), rhos=(0.4, 0.9), w=2)
        scales = axis_scales(cells)
        point = {"tau": 0.4, "rho": 0.4, "w": 2.0}
        d = normalized_distance(point, cells[0]["params"], scales)
        assert d == pytest.approx(math.sqrt((0.2 / 0.4) ** 2))

    def test_nearest_respects_normalization(self, tmp_path):
        # On raw Euclidean distance the w-neighbor (|dw|=1) would lose to
        # the tau-neighbor (|dtau|=0.19); normalized by axis ranges the
        # tau-neighbor is nearer (0.19/0.2 < 1/1... actually equal scale
        # check): tau range 0.2 -> 0.95 units; w range 1 -> 1 unit.
        cells = [
            make_cell(0, 0.30, 2, 0.5, score=1.0),
            make_cell(1, 0.50, 2, 0.5, score=2.0),
            make_cell(2, 0.30, 3, 0.5, score=3.0),
        ]
        engine = QueryEngine(write_store(tmp_path / "s", cells))
        answer = engine.answer("tau=0.49,rho=0.5,w=2")
        assert answer["source"] == "nearest"
        assert answer["cells"][0]["index"] == 1

    def test_max_distance_bounds_the_answer(self, tmp_path):
        engine = QueryEngine(
            write_store(tmp_path / "s", grid_cells()), max_distance=0.05
        )
        with pytest.raises(QueryMiss, match="beyond the allowed"):
            engine.answer("tau=0.9,rho=0.9,w=2")

    def test_empty_store_misses(self, tmp_path):
        engine = QueryEngine(write_store(tmp_path / "s", []))
        with pytest.raises(QueryMiss, match="no answerable cells"):
            engine.answer("tau=0.4,rho=0.5,w=2")


class TestAnswerShape:
    def test_exact_answer_carries_provenance(self, tmp_path):
        engine = QueryEngine(write_store(tmp_path / "s", grid_cells()))
        answer = engine.answer("tau=0.3,rho=0.4,w=2")
        assert answer["source"] == "exact"
        assert answer["distance"] == 0.0
        assert answer["cached"] is False
        [cell] = answer["cells"]
        assert cell["spec_hash"] == "hash0000"
        assert cell["weight"] == 1.0

    def test_second_identical_query_is_cached(self, tmp_path):
        engine = QueryEngine(write_store(tmp_path / "s", grid_cells()))
        engine.answer("tau=0.3,rho=0.4,w=2")
        answer = engine.answer("rho=0.4,tau=0.3,w=2")  # reordered spelling
        assert answer["cached"] is True
        stats = engine.stats()["cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_interpolation_flag_is_part_of_the_key(self, tmp_path):
        engine = QueryEngine(write_store(tmp_path / "s", grid_cells()))
        engine.answer("tau=0.4,rho=0.5,w=2", interpolate=False)
        answer = engine.answer("tau=0.4,rho=0.5,w=2", interpolate=True)
        assert answer["cached"] is False
        assert answer["source"] == "interpolated"


class TestInterpolation:
    def test_midpoint_is_mean_of_corners(self, tmp_path):
        cells = grid_cells(values=[1.0, 2.0, 3.0, 4.0])
        engine = QueryEngine(write_store(tmp_path / "s", cells), interpolate=True)
        answer = engine.answer("tau=0.4,rho=0.5,w=2")
        assert answer["source"] == "interpolated"
        assert answer["metrics"]["score"]["mean"] == pytest.approx(2.5)
        assert sum(c["weight"] for c in answer["cells"]) == pytest.approx(1.0)

    def test_on_grid_line_degenerates_to_linear(self, tmp_path):
        cells = grid_cells(values=[1.0, 2.0, 3.0, 4.0])
        engine = QueryEngine(write_store(tmp_path / "s", cells), interpolate=True)
        answer = engine.answer("tau=0.3,rho=0.5,w=2")  # on the tau=0.3 line
        assert answer["source"] == "interpolated"
        assert answer["metrics"]["score"]["mean"] == pytest.approx(1.5)
        assert len(answer["cells"]) == 2  # zero-weight corners dropped

    def test_outside_hull_falls_back_to_nearest(self, tmp_path):
        engine = QueryEngine(
            write_store(tmp_path / "s", grid_cells()), interpolate=True
        )
        answer = engine.answer("tau=0.9,rho=0.9,w=2")
        assert answer["source"] == "nearest"

    def test_wrong_horizon_falls_back_to_nearest(self, tmp_path):
        engine = QueryEngine(
            write_store(tmp_path / "s", grid_cells(w=2)), interpolate=True
        )
        answer = engine.answer("tau=0.4,rho=0.5,w=3")
        assert answer["source"] == "nearest"

    def test_ragged_grid_missing_corner_falls_back(self, tmp_path):
        cells = grid_cells()[:3]  # drop the (0.5, 0.6) corner
        engine = QueryEngine(write_store(tmp_path / "s", cells), interpolate=True)
        answer = engine.answer("tau=0.4,rho=0.5,w=2")
        assert answer["source"] == "nearest"


finite_metric = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestProperties:
    @given(
        values=st.lists(finite_metric, min_size=4, max_size=4),
        tau_frac=st.floats(min_value=0.0, max_value=1.0),
        rho_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolated_metric_bounded_by_corner_extremes(
        self, tmp_path_factory, values, tau_frac, rho_frac
    ):
        """A bilinear answer never leaves the hull of its corner values."""
        directory = tmp_path_factory.mktemp("prop")
        store = write_store(directory, grid_cells(values=values))
        engine = QueryEngine(store, interpolate=True)
        # clamped lerp: plain a + frac*(b-a) can land one ulp outside the
        # hull, where a nearest-cell fallback is the *correct* answer
        tau = min(0.5, max(0.3, (1 - tau_frac) * 0.3 + tau_frac * 0.5))
        rho = min(0.6, max(0.4, (1 - rho_frac) * 0.4 + rho_frac * 0.6))
        answer = engine.answer({"tau": tau, "rho": rho, "w": 2})
        assert answer["source"] in ("exact", "interpolated")
        mean = answer["metrics"]["score"]["mean"]
        tolerance = 1e-9 * max(1.0, max(abs(v) for v in values))
        assert min(values) - tolerance <= mean <= max(values) + tolerance

    @given(
        values=st.lists(finite_metric, min_size=4, max_size=4),
        order=st.permutations(range(4)),
        interpolate=st.booleans(),
        tau=st.floats(min_value=0.25, max_value=0.55),
        rho=st.floats(min_value=0.35, max_value=0.65),
    )
    @settings(max_examples=60, deadline=None)
    def test_answers_deterministic_under_store_row_shuffling(
        self, tmp_path_factory, values, order, interpolate, tau, rho
    ):
        """Reordering the summary's cell list never changes any answer."""
        cells = grid_cells(values=values)
        shuffled = [cells[i] for i in order]
        base = tmp_path_factory.mktemp("shuffle")
        engine_a = QueryEngine(
            write_store(base / "a", cells), interpolate=interpolate
        )
        engine_b = QueryEngine(
            write_store(base / "b", shuffled), interpolate=interpolate
        )
        query = {"tau": tau, "rho": rho, "w": 2}
        answer_a = engine_a.answer(query)
        answer_b = engine_b.answer(query)
        assert json.dumps(answer_a, sort_keys=True) == json.dumps(
            answer_b, sort_keys=True
        )

    @given(
        values=st.lists(finite_metric, min_size=4, max_size=4),
        cell_index=st.integers(min_value=0, max_value=3),
        interpolate=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_match_returns_stored_aggregates_bit_for_bit(
        self, tmp_path_factory, values, cell_index, interpolate
    ):
        """Querying a grid point returns that cell's metrics unchanged."""
        cells = grid_cells(values=values)
        directory = tmp_path_factory.mktemp("exact")
        engine = QueryEngine(
            write_store(directory, cells), interpolate=interpolate
        )
        params = cells[cell_index]["params"]
        answer = engine.answer(dict(params))
        assert answer["source"] == "exact"
        assert answer["metrics"] == cells[cell_index]["metrics"]


class TestOnMissCompute:
    @pytest.fixture(scope="class")
    def real_store(self, tmp_path_factory):
        """One real single-cell sweep store (compute needs the manifest)."""
        directory = tmp_path_factory.mktemp("real") / "store"
        sweep = SweepSpec(
            name="compute-unit",
            base_config=ModelConfig.square(side=10, horizon=1, tau=0.3),
            taus=(0.3,),
            n_replicates=1,
            seed=5,
        )
        run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        return directory

    def test_error_policy_raises_and_compute_policy_simulates(self, real_store):
        strict = QueryEngine(real_store, max_distance=0.01)
        with pytest.raises(QueryMiss):
            strict.answer("tau=0.42,rho=0.5,w=1")
        computing = QueryEngine(
            real_store, max_distance=0.01, on_miss="compute"
        )
        answer = computing.answer("tau=0.42,rho=0.5,w=1")
        assert answer["source"] == "computed"
        assert answer["metrics"]["final_unhappy_fraction"]["count"] == 1.0

    def test_computed_answers_are_deterministic_and_cached(self, real_store):
        first = QueryEngine(real_store, max_distance=0.01, on_miss="compute")
        second = QueryEngine(real_store, max_distance=0.01, on_miss="compute")
        answer_a = first.answer("tau=0.42,rho=0.5,w=1")
        answer_b = second.answer("tau=0.42,rho=0.5,w=1")
        assert answer_a["metrics"] == answer_b["metrics"]
        again = first.answer("tau=0.42,rho=0.5,w=1")
        assert again["cached"] is True

    def test_non_integer_horizon_cannot_be_computed(self, real_store):
        engine = QueryEngine(real_store, max_distance=0.01, on_miss="compute")
        with pytest.raises(ServingError, match="non-integer horizon"):
            engine.answer("tau=0.42,rho=0.5,w=1.5")

    def test_store_without_manifest_cannot_compute(self, tmp_path):
        engine = QueryEngine(
            write_store(tmp_path / "s", grid_cells()),
            max_distance=0.01,
            on_miss="compute",
        )
        with pytest.raises(ServingError, match="manifest"):
            engine.answer("tau=0.9,rho=0.9,w=2")

    def test_invalid_on_miss_rejected(self, tmp_path):
        with pytest.raises(ServingError, match="on_miss"):
            QueryEngine(write_store(tmp_path / "s", []), on_miss="explode")
