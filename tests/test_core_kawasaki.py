"""Tests for the Kawasaki (swap) dynamics baseline."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.initializer import random_configuration, uniform_configuration
from repro.core.kawasaki import KawasakiDynamics
from repro.core.state import ModelState
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


def fresh_state(config, seed=0) -> ModelState:
    return ModelState(config, random_configuration(config, seed=seed))


class TestSwapSemantics:
    def test_magnetization_conserved(self, config):
        state = fresh_state(config, seed=1)
        initial_plus = state.grid.count(AgentType.PLUS)
        KawasakiDynamics(state, seed=2).run(max_proposals=2000)
        assert state.grid.count(AgentType.PLUS) == initial_plus

    def test_swap_check_rejects_same_type_pair(self, config):
        state = fresh_state(config, seed=3)
        dynamics = KawasakiDynamics(state, seed=4)
        spins = state.grid.spins
        plus_sites = np.argwhere(spins == 1)
        a, b = tuple(plus_sites[0]), tuple(plus_sites[1])
        assert not dynamics.swap_makes_both_happy(
            (int(a[0]), int(a[1])), (int(b[0]), int(b[1]))
        )

    def test_swap_check_leaves_state_unchanged(self, config):
        state = fresh_state(config, seed=5)
        dynamics = KawasakiDynamics(state, seed=6)
        spins_before = state.snapshot()
        counts_before = state.plus_counts()
        plus_site = tuple(int(v) for v in np.argwhere(state.grid.spins == 1)[0])
        minus_site = tuple(int(v) for v in np.argwhere(state.grid.spins == -1)[0])
        dynamics.swap_makes_both_happy(plus_site, minus_site)
        assert np.array_equal(state.snapshot(), spins_before)
        assert np.array_equal(state.plus_counts(), counts_before)

    def test_performed_swaps_make_both_happy(self, config):
        state = fresh_state(config, seed=7)
        dynamics = KawasakiDynamics(state, seed=8)
        for _ in range(500):
            event = dynamics.step()
            if event is None:
                continue
            assert state.is_happy(event.site_a.row, event.site_a.col)
            assert state.is_happy(event.site_b.row, event.site_b.col)

    def test_energy_never_decreases_on_accepted_swaps(self, config):
        state = fresh_state(config, seed=9)
        dynamics = KawasakiDynamics(state, seed=10)
        previous = state.energy()
        swaps_seen = 0
        for _ in range(500):
            event = dynamics.step()
            if event is None:
                continue
            swaps_seen += 1
            current = state.energy()
            # A swap that makes both agents happy increases both their own
            # same-type counts, hence the global agreement count.
            assert current >= previous
            previous = current
        assert swaps_seen > 0


class TestRun:
    def test_run_reports_counts(self, config):
        state = fresh_state(config, seed=11)
        result = KawasakiDynamics(state, seed=12).run(max_proposals=500)
        assert result.n_proposals <= 500
        assert result.n_swaps <= result.n_proposals

    def test_converges_on_monochromatic_grid(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.PLUS))
        result = KawasakiDynamics(state, seed=13).run()
        assert result.converged
        assert result.n_swaps == 0

    def test_consecutive_failures_trigger_convergence(self, config):
        # With a tiny failure budget the run stops quickly and flags it.
        state = fresh_state(config, seed=14)
        result = KawasakiDynamics(state, seed=15).run(max_consecutive_failures=1)
        assert result.converged or result.n_swaps > 0

    def test_exists_productive_swap_on_mixed_grid(self, config):
        state = fresh_state(config, seed=16)
        dynamics = KawasakiDynamics(state, seed=17)
        # On a random balanced grid with tau=0.45 some productive swap exists
        # with overwhelming probability.
        assert dynamics.exists_productive_swap(max_pairs=5000)

    def test_exists_productive_swap_false_when_all_happy(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.MINUS))
        dynamics = KawasakiDynamics(state, seed=18)
        assert not dynamics.exists_productive_swap()

    def test_improves_homogeneity(self, config):
        from repro.analysis.segregation import local_homogeneity

        state = fresh_state(config, seed=19)
        before = local_homogeneity(state.grid.spins, config.horizon)
        KawasakiDynamics(state, seed=20).run(max_proposals=4000)
        after = local_homogeneity(state.grid.spins, config.horizon)
        assert after > before
