"""Tests for the Glauber dynamics engine."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics, run_to_completion
from repro.core.initializer import (
    checkerboard_configuration,
    random_configuration,
    uniform_configuration,
)
from repro.core.state import ModelState
from repro.errors import StateError
from repro.types import AgentType, FlipEvent, FlipRule, SchedulerKind


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


def fresh_state(config, seed=0) -> ModelState:
    return ModelState(config, random_configuration(config, seed=seed))


class TestTermination:
    def test_terminates_on_random_grid(self, config):
        state = fresh_state(config)
        result = GlauberDynamics(state, seed=1).run()
        assert result.terminated
        assert state.n_flippable == 0

    def test_no_unhappy_agents_remain_below_half(self, config):
        # For tau < 1/2 termination means every agent is happy.
        state = fresh_state(config)
        GlauberDynamics(state, seed=1).run()
        assert state.n_unhappy == 0

    def test_monochromatic_grid_terminates_immediately(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.PLUS))
        dynamics = GlauberDynamics(state, seed=0)
        assert dynamics.is_terminated
        result = dynamics.run()
        assert result.n_flips == 0
        assert result.terminated

    def test_step_after_termination_returns_none(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.PLUS))
        dynamics = GlauberDynamics(state, seed=0)
        assert dynamics.step() is None

    def test_static_regime_barely_flips(self):
        # tau < 1/4: the initial configuration is static w.h.p. (Figure 2).
        config = ModelConfig.square(side=24, horizon=2, tau=0.2)
        state = fresh_state(config, seed=2)
        result = GlauberDynamics(state, seed=3).run()
        assert result.terminated
        assert result.n_flips <= config.n_sites * 0.01


class TestFlipSemantics:
    def test_every_flip_makes_agent_happy(self, config):
        state = fresh_state(config, seed=4)
        dynamics = GlauberDynamics(state, seed=5)
        for _ in range(200):
            event = dynamics.step()
            if dynamics.is_terminated:
                break
            if event is None:
                continue
            assert state.is_happy(event.site.row, event.site.col)

    def test_energy_strictly_increases_per_flip(self, config):
        state = fresh_state(config, seed=6)
        dynamics = GlauberDynamics(state, seed=7)
        previous = state.energy()
        for _ in range(100):
            event = dynamics.step()
            if event is None:
                break
            current = state.energy()
            assert current > previous
            previous = current

    def test_events_report_new_type(self, config):
        state = fresh_state(config, seed=8)
        dynamics = GlauberDynamics(state, seed=9)
        event = None
        while event is None and not dynamics.is_terminated:
            event = dynamics.step()
        assert isinstance(event, FlipEvent)
        assert state.grid.get(event.site.row, event.site.col) == int(event.new_type)

    def test_continuous_time_increases(self, config):
        state = fresh_state(config, seed=10)
        dynamics = GlauberDynamics(state, seed=11)
        times = []
        for _ in range(20):
            event = dynamics.step()
            if event is None:
                break
            times.append(event.time)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_discrete_time_counts_steps(self, config):
        state = fresh_state(config, seed=12)
        dynamics = GlauberDynamics(state, seed=13, scheduler=SchedulerKind.DISCRETE)
        result = dynamics.run(max_steps=50)
        assert result.n_steps == 50 or result.terminated
        assert dynamics.time == dynamics.n_steps


class TestBudgets:
    def test_max_flips_respected(self, config):
        state = fresh_state(config, seed=14)
        result = GlauberDynamics(state, seed=15).run(max_flips=10)
        assert result.n_flips == 10
        assert not result.terminated

    def test_max_time_respected(self, config):
        state = fresh_state(config, seed=16)
        result = GlauberDynamics(state, seed=17).run(max_time=0.001)
        assert result.final_time >= 0.001 or result.terminated

    def test_run_can_be_resumed(self, config):
        state = fresh_state(config, seed=18)
        dynamics = GlauberDynamics(state, seed=19)
        first = dynamics.run(max_flips=5)
        second = dynamics.run()
        assert second.terminated
        assert first.n_flips + second.n_flips == dynamics.n_flips


class TestRecording:
    def test_trajectory_recorded(self, config):
        state = fresh_state(config, seed=20)
        result = GlauberDynamics(state, seed=21).run(
            record_trajectory=True, record_every=10
        )
        trajectory = result.trajectory
        assert trajectory is not None
        assert len(trajectory) >= 2
        assert trajectory.n_flips[0] == 0
        assert trajectory.n_flips[-1] == result.n_flips
        assert trajectory.n_unhappy[-1] == 0

    def test_trajectory_energy_monotone(self, config):
        state = fresh_state(config, seed=22)
        result = GlauberDynamics(state, seed=23).run(record_trajectory=True)
        energies = result.trajectory.energy
        assert all(b >= a for a, b in zip(energies, energies[1:]))

    def test_events_recorded(self, config):
        state = fresh_state(config, seed=24)
        result = GlauberDynamics(state, seed=25).run(record_events=True)
        assert result.events is not None
        assert len(result.events) == result.n_flips

    def test_invalid_record_every(self, config):
        state = fresh_state(config, seed=26)
        with pytest.raises(StateError):
            GlauberDynamics(state, seed=27).run(record_every=0)

    def test_callback_invoked(self, config):
        state = fresh_state(config, seed=28)
        calls = []
        GlauberDynamics(state, seed=29).run(
            max_flips=5, callback=lambda dyn, event: calls.append(event)
        )
        assert len(calls) >= 5


class TestSchedulersAgree:
    def test_both_schedulers_reach_all_happy(self, config):
        for scheduler in (SchedulerKind.CONTINUOUS, SchedulerKind.DISCRETE):
            state = fresh_state(config, seed=30)
            result = GlauberDynamics(state, seed=31, scheduler=scheduler).run()
            assert result.terminated
            assert state.n_unhappy == 0

    def test_final_homogeneity_similar_across_schedulers(self, config):
        from repro.analysis.segregation import local_homogeneity

        values = {}
        for scheduler in (SchedulerKind.CONTINUOUS, SchedulerKind.DISCRETE):
            state = fresh_state(config, seed=32)
            GlauberDynamics(state, seed=33, scheduler=scheduler).run()
            values[scheduler] = local_homogeneity(state.grid.spins, config.horizon)
        assert abs(values[SchedulerKind.CONTINUOUS] - values[SchedulerKind.DISCRETE]) < 0.15


class TestAlwaysFlipVariant:
    def test_always_flip_terminates_when_no_unhappy(self, config):
        state = fresh_state(config, seed=34)
        dynamics = GlauberDynamics(state, seed=35, flip_rule=FlipRule.ALWAYS)
        result = dynamics.run(max_steps=20 * config.n_sites)
        # Below tau=1/2 always-flip coincides with only-if-happy, so it terminates.
        assert result.terminated
        assert state.n_unhappy == 0


class TestHelpers:
    def test_run_to_completion_wrapper(self, config):
        state = fresh_state(config, seed=36)
        result = run_to_completion(state, seed=37)
        assert result.terminated

    def test_checkerboard_above_half_is_frozen_unhappy(self):
        # On a checkerboard with horizon 1 every agent has 5 same-type
        # neighbours out of 9.  With tau = 0.6 (threshold 6) everyone is
        # unhappy, but flipping would also leave only 5 same-type agents, so
        # nobody can flip: the process terminates immediately in an all-unhappy
        # frozen state — exactly the "no unhappy agent that can become happy"
        # termination clause of the paper.
        config = ModelConfig.square(side=20, horizon=1, tau=0.6)
        state = ModelState(config, checkerboard_configuration(config))
        assert state.n_unhappy == config.n_sites
        assert state.n_flippable == 0
        result = GlauberDynamics(state, seed=38).run()
        assert result.terminated
        assert result.n_flips == 0

    def test_checkerboard_at_half_is_all_happy(self):
        # With tau = 0.5 (threshold 5) the same checkerboard is entirely happy.
        config = ModelConfig.square(side=20, horizon=1, tau=0.5)
        state = ModelState(config, checkerboard_configuration(config))
        assert state.n_unhappy == 0


class TestTrajectoryRecordingCost:
    """Trajectory.record reads incremental counters — no full-grid recompute."""

    def test_record_never_triggers_full_recompute(self, config, monkeypatch):
        state = fresh_state(config, seed=4)
        dynamics = GlauberDynamics(state, seed=6)
        calls = {"n": 0}
        original = ModelState._same_counts_full

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ModelState, "_same_counts_full", counting)
        result = dynamics.run(record_trajectory=True, record_every=1, max_flips=200)
        assert len(result.trajectory) > 1
        assert calls["n"] == 0

    def test_dense_recording_matches_full_recompute_at_every_sample(self, config):
        state = fresh_state(config, seed=8)
        dynamics = GlauberDynamics(state, seed=9)
        samples = []

        def check(dyn, event):
            if event is not None:
                samples.append(
                    dyn.state.energy() == int(dyn.state._same_counts_full().sum())
                )

        dynamics.run(record_trajectory=True, record_every=1, callback=check)
        assert samples and all(samples)
