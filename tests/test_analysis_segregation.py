"""Tests for the whole-configuration segregation metrics."""

import numpy as np
import pytest

from repro.analysis.segregation import (
    default_region_radius,
    interface_density,
    local_homogeneity,
    segregation_gain,
    segregation_metrics,
    segregation_metrics_batch,
    unhappy_fraction,
)
from repro.errors import AnalysisError
from repro.core.config import ModelConfig
from repro.core.initializer import (
    checkerboard_configuration,
    random_configuration,
    uniform_configuration,
)
from repro.core.simulation import simulate
from repro.core.state import ModelState
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


class TestScalarMetrics:
    def test_unhappy_fraction_matches_state(self, config):
        grid = random_configuration(config, seed=0)
        state = ModelState(config, grid)
        expected = state.n_unhappy / config.n_sites
        assert unhappy_fraction(grid.spins, config) == pytest.approx(expected)

    def test_unhappy_fraction_zero_on_uniform(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        assert unhappy_fraction(spins, config) == 0.0

    def test_local_homogeneity_extremes(self, config):
        uniform = uniform_configuration(config, AgentType.PLUS).spins
        assert local_homogeneity(uniform, config.horizon) == 1.0
        checker = checkerboard_configuration(config).spins
        assert local_homogeneity(checker, config.horizon) == pytest.approx(13 / 25)

    def test_local_homogeneity_random_near_half(self, config):
        spins = random_configuration(config, seed=1).spins
        assert 0.45 < local_homogeneity(spins, config.horizon) < 0.60

    def test_interface_density_extremes(self, config):
        uniform = uniform_configuration(config, AgentType.MINUS).spins
        assert interface_density(uniform) == 0.0
        checker = checkerboard_configuration(config).spins
        assert interface_density(checker) == 1.0

    def test_interface_density_random_near_half(self, config):
        spins = random_configuration(config, seed=2).spins
        assert 0.4 < interface_density(spins) < 0.6


class TestMetricsBundle:
    def test_bundle_keys(self, config):
        spins = random_configuration(config, seed=3).spins
        metrics = segregation_metrics(spins, config, max_region_radius=6)
        d = metrics.as_dict()
        assert "mean_monochromatic_size" in d
        assert "energy" in d
        assert "largest_cluster_fraction" in d

    def test_uniform_grid_bundle(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        metrics = segregation_metrics(spins, config, max_region_radius=6)
        assert metrics.unhappy_fraction == 0.0
        assert metrics.dominant_type_fraction == 1.0
        assert metrics.largest_cluster_fraction == 1.0
        assert metrics.mean_monochromatic_size == pytest.approx(13.0**2)

    def test_custom_ratio_threshold_used(self, config):
        spins = random_configuration(config, seed=4).spins
        loose = segregation_metrics(spins, config, max_region_radius=4, ratio_threshold=0.9)
        strict = segregation_metrics(spins, config, max_region_radius=4, ratio_threshold=0.05)
        assert loose.mean_almost_monochromatic_size >= strict.mean_almost_monochromatic_size

    def test_metrics_improve_after_dynamics(self, config):
        result = simulate(config, seed=5)
        gain = segregation_gain(result.initial_spins, result.final_spins, config)
        assert gain["delta_local_homogeneity"] > 0
        assert gain["delta_interface_density"] < 0
        assert gain["delta_mean_monochromatic_size"] > 0

    def test_gain_keys(self, config):
        result = simulate(config, seed=6)
        gain = segregation_gain(result.initial_spins, result.final_spins, config)
        for name in ("local_homogeneity", "interface_density", "mean_monochromatic_size"):
            assert f"initial_{name}" in gain
            assert f"final_{name}" in gain
            assert f"delta_{name}" in gain


class TestDefaultRegionRadius:
    def test_small_torus_caps_at_fitting_radius(self):
        config = ModelConfig.square(side=9, horizon=3, tau=0.45)
        assert default_region_radius(config) == 4  # (9 - 1) // 2

    def test_large_torus_caps_at_four_horizons(self):
        config = ModelConfig.square(side=64, horizon=3, tau=0.45)
        assert default_region_radius(config) == 12

    def test_gain_uses_shared_cap(self, config):
        # segregation_gain saturates exactly like the runner and the CLI:
        # its mean monochromatic size must equal a metrics call capped at
        # default_region_radius.
        result = simulate(config, seed=7)
        gain = segregation_gain(result.initial_spins, result.final_spins, config)
        capped = segregation_metrics(
            result.final_spins, config, max_region_radius=default_region_radius(config)
        )
        assert gain["final_mean_monochromatic_size"] == capped.mean_monochromatic_size


class TestMetricsBatch:
    def test_rows_identical_to_serial_metrics(self, config):
        rng = np.random.default_rng(8)
        stack = np.where(rng.random((3, config.n_rows, config.n_cols)) < 0.5, 1, -1)
        stack = stack.astype(np.int8)
        batch = segregation_metrics_batch(stack, config, max_region_radius=6)
        for replica, metrics in zip(stack, batch):
            assert metrics == segregation_metrics(replica, config, max_region_radius=6)

    def test_custom_threshold_forwarded(self, config):
        rng = np.random.default_rng(9)
        stack = np.where(rng.random((2, config.n_rows, config.n_cols)) < 0.5, 1, -1)
        stack = stack.astype(np.int8)
        batch = segregation_metrics_batch(
            stack, config, max_region_radius=4, ratio_threshold=0.9
        )
        for replica, metrics in zip(stack, batch):
            assert metrics == segregation_metrics(
                replica, config, max_region_radius=4, ratio_threshold=0.9
            )

    def test_non_stack_rejected(self, config):
        spins = np.ones((config.n_rows, config.n_cols), dtype=np.int8)
        with pytest.raises(AnalysisError):
            segregation_metrics_batch(spins, config)

    def test_empty_stack_allowed(self, config):
        stack = np.ones((0, config.n_rows, config.n_cols), dtype=np.int8)
        assert segregation_metrics_batch(stack, config) == []
