"""Tests for the whole-configuration segregation metrics."""

import numpy as np
import pytest

from repro.analysis.segregation import (
    interface_density,
    local_homogeneity,
    segregation_gain,
    segregation_metrics,
    unhappy_fraction,
)
from repro.core.config import ModelConfig
from repro.core.initializer import (
    checkerboard_configuration,
    random_configuration,
    uniform_configuration,
)
from repro.core.simulation import simulate
from repro.core.state import ModelState
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


class TestScalarMetrics:
    def test_unhappy_fraction_matches_state(self, config):
        grid = random_configuration(config, seed=0)
        state = ModelState(config, grid)
        expected = state.n_unhappy / config.n_sites
        assert unhappy_fraction(grid.spins, config) == pytest.approx(expected)

    def test_unhappy_fraction_zero_on_uniform(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        assert unhappy_fraction(spins, config) == 0.0

    def test_local_homogeneity_extremes(self, config):
        uniform = uniform_configuration(config, AgentType.PLUS).spins
        assert local_homogeneity(uniform, config.horizon) == 1.0
        checker = checkerboard_configuration(config).spins
        assert local_homogeneity(checker, config.horizon) == pytest.approx(13 / 25)

    def test_local_homogeneity_random_near_half(self, config):
        spins = random_configuration(config, seed=1).spins
        assert 0.45 < local_homogeneity(spins, config.horizon) < 0.60

    def test_interface_density_extremes(self, config):
        uniform = uniform_configuration(config, AgentType.MINUS).spins
        assert interface_density(uniform) == 0.0
        checker = checkerboard_configuration(config).spins
        assert interface_density(checker) == 1.0

    def test_interface_density_random_near_half(self, config):
        spins = random_configuration(config, seed=2).spins
        assert 0.4 < interface_density(spins) < 0.6


class TestMetricsBundle:
    def test_bundle_keys(self, config):
        spins = random_configuration(config, seed=3).spins
        metrics = segregation_metrics(spins, config, max_region_radius=6)
        d = metrics.as_dict()
        assert "mean_monochromatic_size" in d
        assert "energy" in d
        assert "largest_cluster_fraction" in d

    def test_uniform_grid_bundle(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        metrics = segregation_metrics(spins, config, max_region_radius=6)
        assert metrics.unhappy_fraction == 0.0
        assert metrics.dominant_type_fraction == 1.0
        assert metrics.largest_cluster_fraction == 1.0
        assert metrics.mean_monochromatic_size == pytest.approx(13.0**2)

    def test_custom_ratio_threshold_used(self, config):
        spins = random_configuration(config, seed=4).spins
        loose = segregation_metrics(spins, config, max_region_radius=4, ratio_threshold=0.9)
        strict = segregation_metrics(spins, config, max_region_radius=4, ratio_threshold=0.05)
        assert loose.mean_almost_monochromatic_size >= strict.mean_almost_monochromatic_size

    def test_metrics_improve_after_dynamics(self, config):
        result = simulate(config, seed=5)
        gain = segregation_gain(result.initial_spins, result.final_spins, config)
        assert gain["delta_local_homogeneity"] > 0
        assert gain["delta_interface_density"] < 0
        assert gain["delta_mean_monochromatic_size"] > 0

    def test_gain_keys(self, config):
        result = simulate(config, seed=6)
        gain = segregation_gain(result.initial_spins, result.final_spins, config)
        for name in ("local_homogeneity", "interface_density", "mean_monochromatic_size"):
            assert f"initial_{name}" in gain
            assert f"final_{name}" in gain
            assert f"delta_{name}" in gain
