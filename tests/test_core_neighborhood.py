"""Tests for neighbourhood geometry and window sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighborhood import (
    annulus_mask,
    disc_mask,
    neighborhood_offsets,
    neighborhood_size,
    radius_for_size,
    square_mask,
    torus_euclidean_distance,
    torus_l1_distance,
    torus_linf_distance,
    window_sums,
    wrapped_window_indices,
)
from repro.errors import ConfigurationError
from tests.conftest import brute_force_window_sum


class TestNeighborhoodSize:
    @pytest.mark.parametrize("radius,expected", [(0, 1), (1, 9), (2, 25), (10, 441)])
    def test_values(self, radius, expected):
        assert neighborhood_size(radius) == expected

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            neighborhood_size(-1)

    @pytest.mark.parametrize("radius", [0, 1, 3, 7])
    def test_radius_for_size_inverts(self, radius):
        assert radius_for_size(neighborhood_size(radius)) == radius

    @pytest.mark.parametrize("size", [0, 2, 4, 16])
    def test_radius_for_size_rejects_invalid(self, size):
        with pytest.raises(ConfigurationError):
            radius_for_size(size)

    def test_paper_horizon_matches_figure1(self):
        # Figure 1 uses neighbourhood size 441, i.e. horizon 10.
        assert radius_for_size(441) == 10


class TestOffsets:
    def test_count_with_center(self):
        assert neighborhood_offsets(2).shape == (25, 2)

    def test_count_without_center(self):
        assert neighborhood_offsets(2, include_center=False).shape == (24, 2)

    def test_center_excluded(self):
        offsets = neighborhood_offsets(1, include_center=False)
        assert not any((dr == 0 and dc == 0) for dr, dc in offsets)

    def test_max_offset_is_radius(self):
        offsets = neighborhood_offsets(3)
        assert np.abs(offsets).max() == 3


class TestWrappedWindowIndices:
    def test_interior_window(self):
        rows, cols = wrapped_window_indices(10, 10, 5, 5, 1)
        assert rows.tolist() == [4, 5, 6]
        assert cols.tolist() == [4, 5, 6]

    def test_wraps_at_origin(self):
        rows, cols = wrapped_window_indices(10, 10, 0, 0, 1)
        assert rows.tolist() == [9, 0, 1]
        assert cols.tolist() == [9, 0, 1]

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            wrapped_window_indices(10, 10, 0, 0, -1)


class TestTorusDistances:
    def test_linf_wraps(self):
        assert torus_linf_distance((0, 0), (9, 9), 10, 10) == 1

    def test_l1_wraps(self):
        assert torus_l1_distance((0, 0), (9, 9), 10, 10) == 2

    def test_euclidean_wraps(self):
        assert torus_euclidean_distance((0, 0), (9, 0), 10, 10) == pytest.approx(1.0)

    def test_distances_symmetric(self):
        a, b = (2, 3), (7, 9)
        assert torus_linf_distance(a, b, 10, 12) == torus_linf_distance(b, a, 10, 12)
        assert torus_l1_distance(a, b, 10, 12) == torus_l1_distance(b, a, 10, 12)

    def test_zero_distance_to_self(self):
        assert torus_linf_distance((4, 4), (4, 4), 9, 9) == 0
        assert torus_l1_distance((4, 4), (4, 4), 9, 9) == 0


class TestWindowSums:
    def test_uniform_array(self):
        sums = window_sums(np.ones((8, 8), dtype=int), 1)
        assert np.all(sums == 9)

    def test_single_one_spreads_to_window(self):
        arr = np.zeros((9, 9), dtype=int)
        arr[4, 4] = 1
        sums = window_sums(arr, 2)
        assert sums[4, 4] == 1
        assert sums[2, 2] == 1
        assert sums[1, 4] == 0
        assert int(sums.sum()) == 25

    def test_radius_zero_is_identity(self):
        arr = np.arange(12).reshape(3, 4)
        assert np.array_equal(window_sums(arr, 0), arr)

    def test_window_larger_than_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            window_sums(np.ones((4, 4), dtype=int), 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            window_sums(np.ones(5, dtype=int), 1)

    def test_matches_brute_force_on_random_array(self, rng):
        arr = rng.integers(0, 2, size=(11, 13))
        sums = window_sums(arr, 2)
        for row, col in [(0, 0), (5, 6), (10, 12), (0, 12), (10, 0)]:
            assert sums[row, col] == brute_force_window_sum(arr, row, col, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        n_rows=st.integers(min_value=5, max_value=12),
        n_cols=st.integers(min_value=5, max_value=12),
        radius=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_brute_force_everywhere(self, n_rows, n_cols, radius, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 3, size=(n_rows, n_cols))
        sums = window_sums(arr, radius)
        row = int(rng.integers(0, n_rows))
        col = int(rng.integers(0, n_cols))
        assert sums[row, col] == brute_force_window_sum(arr, row, col, radius)

    def test_total_preserved(self, rng):
        arr = rng.integers(0, 2, size=(10, 10))
        sums = window_sums(arr, 1)
        assert int(sums.sum()) == int(arr.sum()) * 9


class TestMasks:
    def test_square_mask_size(self):
        mask = square_mask(20, 20, (10, 10), 2)
        assert int(mask.sum()) == 25

    def test_square_mask_wraps(self):
        mask = square_mask(10, 10, (0, 0), 1)
        assert mask[9, 9]
        assert int(mask.sum()) == 9

    def test_disc_mask_radius_one(self):
        mask = disc_mask(11, 11, (5, 5), 1.0)
        assert int(mask.sum()) == 5  # centre plus 4 axis neighbours

    def test_annulus_excludes_center(self):
        mask = annulus_mask(21, 21, (10, 10), 2.0, 4.0)
        assert not mask[10, 10]
        assert mask[10, 13]

    def test_annulus_invalid_radii_rejected(self):
        with pytest.raises(ConfigurationError):
            annulus_mask(10, 10, (5, 5), 4.0, 2.0)

    def test_square_mask_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            square_mask(10, 10, (5, 5), -1)

    def test_disc_inside_square(self):
        square = square_mask(15, 15, (7, 7), 3)
        disc = disc_mask(15, 15, (7, 7), 3.0)
        assert np.all(square[disc])
