"""Tests for monochromatic / almost-monochromatic region analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.regions import (
    _almost_monochromatic_radius_map_reference,
    _monochromatic_radius_map_reference,
    almost_monochromatic_radius_map,
    expected_almost_region_size,
    expected_region_size,
    minority_ratio_map,
    monochromatic_radius,
    monochromatic_radius_map,
    paper_ratio_threshold,
    region_scan_table,
    region_sizes_from_radii,
    summarize_regions,
)
from repro.errors import AnalysisError


def planted_square(side: int, block_radius: int) -> np.ndarray:
    """A -1 grid with a centred square of +1 of the given radius."""
    spins = -np.ones((side, side), dtype=np.int8)
    c = side // 2
    spins[c - block_radius : c + block_radius + 1, c - block_radius : c + block_radius + 1] = 1
    return spins


class TestMonochromaticRadius:
    def test_uniform_grid_reaches_limit(self):
        spins = np.ones((11, 11), dtype=np.int8)
        radii = monochromatic_radius_map(spins)
        assert np.all(radii == 5)  # (11-1)//2

    def test_checkerboard_has_zero_radius(self):
        rows, cols = np.indices((10, 10))
        spins = np.where((rows + cols) % 2 == 0, 1, -1).astype(np.int8)
        assert np.all(monochromatic_radius_map(spins) == 0)

    def test_planted_square_center_radius(self):
        spins = planted_square(21, 4)
        assert monochromatic_radius(spins, (10, 10)) == 4
        radii = monochromatic_radius_map(spins)
        assert radii[10, 10] == 4

    def test_planted_square_edge_radius_smaller(self):
        spins = planted_square(21, 4)
        # An agent at the edge of the planted square has radius 0 because its
        # 3x3 window already mixes both types.
        assert monochromatic_radius(spins, (10, 14)) == 0

    def test_map_matches_single_site_queries(self, rng):
        spins = np.where(rng.random((15, 15)) < 0.5, 1, -1).astype(np.int8)
        radii = monochromatic_radius_map(spins, max_radius=4)
        for site in [(0, 0), (7, 7), (14, 3)]:
            assert radii[site] == monochromatic_radius(spins, site, max_radius=4)

    def test_max_radius_caps_result(self):
        spins = np.ones((21, 21), dtype=np.int8)
        radii = monochromatic_radius_map(spins, max_radius=3)
        assert radii.max() == 3

    def test_negative_max_radius_rejected(self):
        with pytest.raises(AnalysisError):
            monochromatic_radius_map(np.ones((5, 5), dtype=np.int8), max_radius=-1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_window_at_reported_radius_is_monochromatic(self, seed):
        rng = np.random.default_rng(seed)
        spins = np.where(rng.random((13, 13)) < 0.5, 1, -1).astype(np.int8)
        radii = monochromatic_radius_map(spins, max_radius=3)
        row, col = int(rng.integers(0, 13)), int(rng.integers(0, 13))
        radius = int(radii[row, col])
        rows = np.arange(row - radius, row + radius + 1) % 13
        cols = np.arange(col - radius, col + radius + 1) % 13
        window = spins[np.ix_(rows, cols)]
        assert np.all(window == spins[row, col])


class TestMinorityRatioAndAlmost:
    def test_monochromatic_window_ratio_zero(self):
        spins = np.ones((9, 9), dtype=np.int8)
        assert np.all(minority_ratio_map(spins, 2) == 0.0)

    def test_balanced_window_ratio_near_one(self):
        rows, cols = np.indices((10, 10))
        spins = np.where((rows + cols) % 2 == 0, 1, -1).astype(np.int8)
        ratios = minority_ratio_map(spins, 2)
        assert np.all(ratios >= 12 / 13 - 1e-9)

    def test_almost_radius_at_least_monochromatic_radius(self, rng):
        spins = np.where(rng.random((17, 17)) < 0.5, 1, -1).astype(np.int8)
        mono = monochromatic_radius_map(spins, max_radius=4)
        almost = almost_monochromatic_radius_map(spins, 0.2, max_radius=4)
        assert np.all(almost >= mono)

    def test_threshold_one_gives_max_radius_everywhere(self, rng):
        spins = np.where(rng.random((11, 11)) < 0.5, 1, -1).astype(np.int8)
        almost = almost_monochromatic_radius_map(spins, 1.0, max_radius=3)
        assert np.all(almost == 3)

    def test_threshold_validation(self):
        with pytest.raises(AnalysisError):
            almost_monochromatic_radius_map(np.ones((5, 5), dtype=np.int8), 1.5)

    def test_paper_ratio_threshold_decreases_with_n(self):
        assert paper_ratio_threshold(81) < paper_ratio_threshold(25)

    def test_paper_ratio_threshold_validation(self):
        with pytest.raises(AnalysisError):
            paper_ratio_threshold(49, epsilon=0.0)

    def test_planted_square_with_single_defect_almost_monochromatic(self):
        spins = planted_square(25, 6)
        spins[12, 12] = -1  # one defect at the centre of the +1 square
        mono = monochromatic_radius_map(spins, max_radius=5)
        almost = almost_monochromatic_radius_map(spins, 0.1, max_radius=5)
        center = (12, 14)
        assert almost[center] > mono[center]


class TestSizesAndSummaries:
    def test_region_sizes_formula(self):
        radii = np.array([[0, 1], [2, 3]])
        sizes = region_sizes_from_radii(radii)
        assert sizes.tolist() == [[1, 9], [25, 49]]

    def test_summarize_regions(self):
        radii = np.array([[0, 1], [2, 3]])
        stats = summarize_regions(radii, horizon=2)
        assert stats.max_radius == 3
        assert stats.max_size == 49
        assert stats.mean_radius == pytest.approx(1.5)
        assert stats.fraction_at_least_horizon == pytest.approx(0.5)
        assert set(stats.as_dict()) == {
            "mean_radius",
            "max_radius",
            "mean_size",
            "max_size",
            "fraction_at_least_horizon",
        }

    def test_summarize_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize_regions(np.zeros((0, 0)), horizon=1)

    def test_expected_region_size_uniform(self):
        spins = np.ones((9, 9), dtype=np.int8)
        assert expected_region_size(spins) == pytest.approx(81.0)

    def test_expected_almost_region_size_at_least_expected_region_size(self, rng):
        spins = np.where(rng.random((15, 15)) < 0.5, 1, -1).astype(np.int8)
        mono = expected_region_size(spins, max_radius=4)
        almost = expected_almost_region_size(spins, 0.3, max_radius=4)
        assert almost >= mono


class TestDoublingSearchEquivalence:
    """The doubling + binary search must reproduce the linear radius scan."""

    @staticmethod
    def _linear_scan(spins, site, max_radius=None):
        from repro.analysis.regions import _max_usable_radius

        limit = _max_usable_radius(spins.shape, max_radius)
        n_rows, n_cols = spins.shape
        row, col = site[0] % n_rows, site[1] % n_cols
        center_type = spins[row, col]
        best = 0
        for radius in range(1, limit + 1):
            rows = np.arange(row - radius, row + radius + 1) % n_rows
            cols = np.arange(col - radius, col + radius + 1) % n_cols
            if np.all(spins[np.ix_(rows, cols)] == center_type):
                best = radius
            else:
                break
        return best

    @settings(max_examples=80, deadline=None)
    @given(
        side=st.integers(min_value=1, max_value=25),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        row=st.integers(min_value=-30, max_value=30),
        col=st.integers(min_value=-30, max_value=30),
        cap=st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
    )
    def test_matches_linear_scan_on_random_grids(self, side, density, seed, row, col, cap):
        rng = np.random.default_rng(seed)
        spins = np.where(rng.random((side, side)) < density, 1, -1).astype(np.int8)
        assert monochromatic_radius(spins, (row, col), cap) == self._linear_scan(
            spins, (row, col), cap
        )

    def test_matches_radius_map_everywhere(self):
        rng = np.random.default_rng(5)
        spins = np.where(rng.random((21, 21)) < 0.5, 1, -1).astype(np.int8)
        spins[4:12, 4:12] = 1  # a planted patch exercises larger radii
        radius_map = monochromatic_radius_map(spins)
        for row in range(21):
            for col in range(21):
                assert monochromatic_radius(spins, (row, col)) == radius_map[row, col]

    def test_planted_square_radius_found_by_doubling(self):
        spins = planted_square(41, 13)
        center = (20, 20)
        assert monochromatic_radius(spins, center) == 13
        assert monochromatic_radius(spins, center, max_radius=6) == 6


class TestRadiusMapEquivalence:
    """The SAT doubling/bisection map must equal the linear-scan reference."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_rows=st.integers(min_value=5, max_value=30),
        n_cols=st.integers(min_value=5, max_value=30),
        density=st.floats(min_value=0.05, max_value=0.95),
        max_radius=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
    )
    def test_matches_reference_on_random_grids(
        self, seed, n_rows, n_cols, density, max_radius
    ):
        rng = np.random.default_rng(seed)
        spins = np.where(rng.random((n_rows, n_cols)) < density, 1, -1).astype(np.int8)
        assert np.array_equal(
            monochromatic_radius_map(spins, max_radius=max_radius),
            _monochromatic_radius_map_reference(spins, max_radius=max_radius),
        )

    def test_matches_reference_on_uniform_grid(self):
        spins = np.ones((23, 23), dtype=np.int8)
        for max_radius in (None, 3, 11):
            assert np.array_equal(
                monochromatic_radius_map(spins, max_radius=max_radius),
                _monochromatic_radius_map_reference(spins, max_radius=max_radius),
            )

    def test_matches_reference_on_planted_structures(self):
        for spins in (
            planted_square(41, 13),
            np.where((np.arange(36)[:, None] // 9) % 2 == 0, 1, -1)
            * np.ones((36, 36), dtype=np.int64),
            np.indices((20, 20)).sum(axis=0) % 2 * 2 - 1,  # checkerboard
        ):
            spins = spins.astype(np.int8)
            assert np.array_equal(
                monochromatic_radius_map(spins),
                _monochromatic_radius_map_reference(spins),
            )

    def test_matches_reference_on_rectangular_torus(self):
        rng = np.random.default_rng(5)
        spins = np.where(rng.random((11, 31)) < 0.4, 1, -1).astype(np.int8)
        assert np.array_equal(
            monochromatic_radius_map(spins),
            _monochromatic_radius_map_reference(spins),
        )

    def test_zero_limit_returns_zeros(self):
        spins = np.ones((9, 9), dtype=np.int8)
        assert np.all(monochromatic_radius_map(spins, max_radius=0) == 0)


class TestAlmostRadiusMapEquivalence:
    """The top-down active-set sweep must equal the linear-scan reference."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_rows=st.integers(min_value=1, max_value=28),
        n_cols=st.integers(min_value=1, max_value=28),
        density=st.floats(min_value=0.0, max_value=1.0),
        ratio_threshold=st.one_of(
            st.sampled_from([0.0, 1.0]),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_radius=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
    )
    def test_matches_reference_on_random_grids(
        self, seed, n_rows, n_cols, density, ratio_threshold, max_radius
    ):
        rng = np.random.default_rng(seed)
        spins = np.where(rng.random((n_rows, n_cols)) < density, 1, -1).astype(np.int8)
        assert np.array_equal(
            almost_monochromatic_radius_map(
                spins, ratio_threshold, max_radius=max_radius
            ),
            _almost_monochromatic_radius_map_reference(
                spins, ratio_threshold, max_radius=max_radius
            ),
        )

    @pytest.mark.parametrize("ratio_threshold", [0.0, 0.05, 0.5, 1.0])
    def test_matches_reference_on_planted_structures(self, ratio_threshold):
        checkerboard = (np.indices((20, 20)).sum(axis=0) % 2 * 2 - 1).astype(np.int8)
        defected = planted_square(25, 6)
        defected[12, 12] = -1
        for spins in (planted_square(41, 13), checkerboard, defected):
            assert np.array_equal(
                almost_monochromatic_radius_map(spins, ratio_threshold),
                _almost_monochromatic_radius_map_reference(spins, ratio_threshold),
            )

    def test_matches_reference_on_rectangular_torus(self):
        rng = np.random.default_rng(12)
        spins = np.where(rng.random((9, 33)) < 0.35, 1, -1).astype(np.int8)
        for ratio_threshold in (0.0, 0.25, 1.0):
            assert np.array_equal(
                almost_monochromatic_radius_map(spins, ratio_threshold),
                _almost_monochromatic_radius_map_reference(spins, ratio_threshold),
            )

    def test_max_radius_edge_cases(self):
        spins = planted_square(21, 5)
        for max_radius in (0, 1, 10, 100, None):
            assert np.array_equal(
                almost_monochromatic_radius_map(spins, 0.1, max_radius=max_radius),
                _almost_monochromatic_radius_map_reference(
                    spins, 0.1, max_radius=max_radius
                ),
            )

    def test_threshold_zero_matches_monochromatic_qualification(self):
        rng = np.random.default_rng(3)
        spins = np.where(rng.random((17, 17)) < 0.5, 1, -1).astype(np.int8)
        strict = almost_monochromatic_radius_map(spins, 0.0, max_radius=4)
        reference = _almost_monochromatic_radius_map_reference(spins, 0.0, max_radius=4)
        assert np.array_equal(strict, reference)

    def test_reference_rejects_invalid_threshold(self):
        with pytest.raises(AnalysisError):
            _almost_monochromatic_radius_map_reference(
                np.ones((5, 5), dtype=np.int8), -0.1
            )


class TestSharedScanTable:
    """Both radius maps accept one precomputed summed-area table."""

    def test_shared_table_matches_fresh_scans(self):
        rng = np.random.default_rng(9)
        spins = np.where(rng.random((19, 19)) < 0.5, 1, -1).astype(np.int8)
        table = region_scan_table(spins, max_radius=5)
        assert np.array_equal(
            monochromatic_radius_map(spins, max_radius=5, table=table),
            monochromatic_radius_map(spins, max_radius=5),
        )
        assert np.array_equal(
            almost_monochromatic_radius_map(spins, 0.2, max_radius=5, table=table),
            almost_monochromatic_radius_map(spins, 0.2, max_radius=5),
        )

    def test_wider_table_reusable_for_smaller_caps(self):
        spins = planted_square(23, 7)
        table = region_scan_table(spins)  # padded to the torus limit
        for max_radius in (1, 4, 9):
            assert np.array_equal(
                monochromatic_radius_map(spins, max_radius=max_radius, table=table),
                monochromatic_radius_map(spins, max_radius=max_radius),
            )
            assert np.array_equal(
                almost_monochromatic_radius_map(
                    spins, 0.3, max_radius=max_radius, table=table
                ),
                almost_monochromatic_radius_map(spins, 0.3, max_radius=max_radius),
            )

    def test_undersized_table_rejected(self):
        spins = np.ones((15, 15), dtype=np.int8)
        small = region_scan_table(spins, max_radius=2)
        with pytest.raises(AnalysisError):
            monochromatic_radius_map(spins, max_radius=6, table=small)
        with pytest.raises(AnalysisError):
            almost_monochromatic_radius_map(spins, 0.1, max_radius=6, table=small)


class TestRegionScanTableBatch:
    def test_slices_match_per_replica_tables(self):
        import numpy as np

        from repro.analysis.regions import region_scan_table, region_scan_table_batch

        rng = np.random.default_rng(3)
        stack = np.where(rng.random((4, 18, 18)) < 0.5, 1, -1).astype(np.int8)
        tables = region_scan_table_batch(stack, max_radius=5)
        for replica in range(stack.shape[0]):
            expected = region_scan_table(stack[replica], max_radius=5)
            assert np.array_equal(tables[replica], expected)

    def test_rejects_non_stack_input(self):
        import numpy as np
        import pytest

        from repro.analysis.regions import region_scan_table_batch
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            region_scan_table_batch(np.ones((5, 5), dtype=np.int8))
