"""Tests for good/bad block classification."""

import numpy as np
import pytest

from repro.analysis.blocks import (
    classify_blocks,
    good_block_probability,
    good_block_threshold,
)
from repro.core.config import ModelConfig
from repro.core.initializer import random_configuration, uniform_configuration
from repro.errors import AnalysisError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=48, horizon=2, tau=0.45)


class TestThreshold:
    def test_scaling_with_n(self):
        small = good_block_threshold(ModelConfig.square(48, 2, 0.45))
        large = good_block_threshold(ModelConfig.square(48, 4, 0.45))
        assert large > small

    def test_epsilon_validation(self, config):
        with pytest.raises(AnalysisError):
            good_block_threshold(config, epsilon=0.6)

    def test_constant_validation(self, config):
        with pytest.raises(AnalysisError):
            good_block_threshold(config, constant=0.0)


class TestClassification:
    def test_balanced_random_grid_mostly_good(self, config):
        spins = random_configuration(config, seed=0).spins
        classification = classify_blocks(spins, config, block_side=8)
        assert classification.bad_fraction < 0.3
        assert classification.n_blocks == 36

    def test_all_minus_grid_is_all_bad(self, config):
        # Every window is 100% minority, far above any balanced threshold.
        spins = uniform_configuration(config, AgentType.MINUS).spins
        classification = classify_blocks(spins, config, block_side=8)
        assert classification.bad_fraction == 1.0
        assert classification.bad_to_good_ratio() == float("inf")

    def test_all_plus_grid_is_all_good(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        classification = classify_blocks(spins, config, block_side=8)
        assert classification.bad_fraction == 0.0

    def test_planted_minority_patch_makes_its_block_bad(self, config):
        grid = random_configuration(config, seed=1)
        grid.set_square((4, 4), 3, AgentType.MINUS)  # a 7x7 solid minority patch
        classification = classify_blocks(grid.spins, config, block_side=8)
        assert not classification.good_blocks[0, 0]

    def test_shape_mismatch_rejected(self, config):
        with pytest.raises(AnalysisError):
            classify_blocks(np.ones((10, 10), dtype=np.int8), config)

    def test_default_block_side_divides_grid(self, config):
        spins = random_configuration(config, seed=2).spins
        classification = classify_blocks(spins, config)
        block_side = classification.block_grid.block_side
        assert config.n_rows % block_side == 0

    def test_largest_bad_cluster_radius(self, config):
        grid = random_configuration(config, seed=3)
        grid.set_square((4, 4), 3, AgentType.MINUS)
        classification = classify_blocks(grid.spins, config, block_side=8)
        assert classification.largest_bad_cluster_radius() >= 0

    def test_no_bad_blocks_gives_zero_radius(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        classification = classify_blocks(spins, config, block_side=8)
        assert classification.largest_bad_cluster_radius() == 0


class TestGoodBlockProbability:
    def test_probability_high_for_balanced_grid(self):
        config = ModelConfig.square(side=32, horizon=2, tau=0.45)
        probability = good_block_probability(config, block_side=8, n_trials=30, seed=0)
        assert probability > 0.5

    def test_invalid_trials_rejected(self, config):
        with pytest.raises(AnalysisError):
            good_block_probability(config, n_trials=0)
