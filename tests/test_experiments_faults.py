"""Fault-injection tests for the sweep supervisor.

Every :class:`~repro.experiments.faults.FaultPlan` fault kind is exercised
both ways: under ``on_error="retry"`` the sweep must converge to rows
bitwise identical to the fault-free run (timings aside), and under
``on_error="skip"`` the faulty cell must end up quarantined — with its
identity, attempt count and worker traceback — while every other cell
completes.  The degradation ladder (pool respawn, shm→pickle demotion,
serial fallback) and the seeded backoff schedule are pinned here too.
"""

import time
import warnings

import pytest

from repro.core.config import ModelConfig
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    SweepDegradationWarning,
)
from repro.experiments import shm
from repro.experiments.faults import (
    CELL_FAULT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.experiments.parallel import (
    SweepCellError,
    backoff_delay,
    run_sweep_parallel,
)
from repro.experiments.spec import SweepSpec

#: Timings differ between runs by construction; everything else must match.
TIMING_COLUMNS = {"wall_clock_seconds"}


def comparable_rows(table):
    """The table's rows with the timing columns stripped."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in table.rows
    ]


@pytest.fixture
def sweep() -> SweepSpec:
    """Four small cells — enough for chunking, quick enough for chaos."""
    base = ModelConfig.square(side=10, horizon=1, tau=0.3)
    return SweepSpec(
        name="faults-unit",
        base_config=base,
        taus=[0.3, 0.35, 0.4, 0.45],
        n_replicates=2,
        seed=7,
    )


@pytest.fixture
def baseline(sweep):
    """Fault-free serial rows every recovery test must reproduce."""
    return comparable_rows(run_sweep_parallel(sweep, workers=1))


def quiet_sweep(*args, **kwargs):
    """Run a sweep with degradation warnings silenced (they are expected)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SweepDegradationWarning)
        return run_sweep_parallel(*args, **kwargs)


class TestFaultPlanConstruction:
    def test_builders_accumulate_specs(self):
        plan = FaultPlan().crash(0).hang(1, seconds=2.0).corrupt_shm(2)
        assert [spec.kind for spec in plan.faults] == [
            "crash",
            "hang",
            "corrupt-shm",
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("segfault", 0)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("crash", -1)
        with pytest.raises(ConfigurationError):
            FaultSpec("crash", 0, attempts=0)
        with pytest.raises(ConfigurationError):
            FaultSpec("hang", 0, hang_seconds=0.0)

    def test_attempt_window_is_finite(self):
        spec = FaultSpec("crash", 3, attempts=2)
        assert spec.fires(3, 0) and spec.fires(3, 1)
        assert not spec.fires(3, 2)
        assert not spec.fires(2, 0)

    def test_plan_survives_pickling(self):
        import pickle

        plan = FaultPlan().crash(1, attempts=2).torn_record(3, keep_bytes=10)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_every_kind_has_coverage_here(self):
        # Guard: a new fault kind must come with tests in this module.
        assert set(FAULT_KINDS) == {
            "crash",
            "memory-error",
            "hang",
            "kill",
            "corrupt-shm",
            "torn-record",
        }
        assert set(CELL_FAULT_KINDS) <= set(FAULT_KINDS)


class TestCrashFault:
    def test_retry_recovers_identical_rows_inline(self, sweep, baseline):
        table = run_sweep_parallel(
            sweep,
            workers=1,
            fault_plan=FaultPlan().crash(1),
            retries=2,
            on_error="retry",
            backoff=0.0,
        )
        assert comparable_rows(table) == baseline
        assert table.failures == []

    def test_retry_recovers_identical_rows_pool(self, sweep, baseline):
        table = run_sweep_parallel(
            sweep,
            workers=2,
            fault_plan=FaultPlan().crash(1),
            retries=2,
            on_error="retry",
            backoff=0.0,
            transfer="pickle",
        )
        assert comparable_rows(table) == baseline

    def test_skip_quarantines_with_identity_and_traceback(self, sweep, baseline):
        table = run_sweep_parallel(
            sweep,
            workers=2,
            fault_plan=FaultPlan().crash(2, attempts=9),
            retries=1,
            on_error="skip",
            backoff=0.0,
            transfer="pickle",
        )
        cells = list(sweep.cells())
        assert [f["cell_index"] for f in table.failures] == [2]
        failure = table.failures[0]
        assert failure["cell_name"] == cells[2].name
        assert failure["attempts"] == 2  # initial run + one retry
        assert "InjectedFault" in failure["traceback"]
        # Every other cell completed: the quarantined cell's rows are the
        # only ones missing, in place.
        expected = [
            row for row in baseline if row["experiment"] != cells[2].name
        ]
        assert comparable_rows(table) == expected

    def test_raise_policy_aborts_on_first_failure(self, sweep):
        with pytest.raises(SweepCellError) as excinfo:
            run_sweep_parallel(
                sweep,
                workers=1,
                fault_plan=FaultPlan().crash(2),
                on_error="raise",
            )
        assert excinfo.value.cell_index == 2
        assert "InjectedFault" in str(excinfo.value)

    def test_retry_policy_raises_after_exhaustion(self, sweep):
        with pytest.raises(SweepCellError):
            run_sweep_parallel(
                sweep,
                workers=1,
                fault_plan=FaultPlan().crash(2, attempts=9),
                retries=2,
                on_error="retry",
                backoff=0.0,
            )


class TestMemoryErrorFault:
    def test_retry_recovers_identical_rows(self, sweep, baseline):
        table = run_sweep_parallel(
            sweep,
            workers=2,
            fault_plan=FaultPlan().memory_error(1),
            retries=1,
            on_error="retry",
            backoff=0.0,
            transfer="pickle",
        )
        assert comparable_rows(table) == baseline

    def test_skip_quarantines_memory_error(self, sweep):
        table = run_sweep_parallel(
            sweep,
            workers=1,
            fault_plan=FaultPlan().memory_error(0, attempts=9),
            retries=0,
            on_error="skip",
            backoff=0.0,
        )
        assert [f["cell_index"] for f in table.failures] == [0]
        assert "MemoryError" in table.failures[0]["traceback"]


class TestHangFault:
    def test_hang_detected_killed_and_retried(self, sweep, baseline):
        start = time.monotonic()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = run_sweep_parallel(
                sweep,
                workers=2,
                fault_plan=FaultPlan().hang(1, seconds=60.0),
                cell_timeout=2.0,
                retries=2,
                on_error="retry",
                backoff=0.0,
                transfer="pickle",
                chunk_size=1,
            )
        # Recovery must come from the deadline, not from waiting out the hang.
        assert time.monotonic() - start < 30.0
        assert comparable_rows(table) == baseline
        messages = [str(w.message) for w in caught]
        assert any("hung" in m and "respawning" in m for m in messages)

    def test_queue_time_does_not_count_against_deadline(self, sweep, baseline):
        # run_pool submits every ready chunk up front, so with two workers
        # and four single-cell chunks the second wave waits roughly a full
        # chunk runtime in the executor queue before a worker picks it up.
        # The deadline clock must start at execution (the worker's started
        # breadcrumb), not at submission: here each cell *executes* for
        # ~1.5s against a 2.5s deadline, but submission-relative clocks
        # would see ~3s for the second wave and falsely kill the pool —
        # which under on_error="raise" aborts the healthy sweep.
        slow = FaultPlan()
        for index in range(4):
            slow = slow.hang(index, seconds=1.5, attempts=99)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SweepDegradationWarning)
            table = run_sweep_parallel(
                sweep,
                workers=2,
                fault_plan=slow,
                cell_timeout=2.5,
                on_error="raise",
                transfer="pickle",
                chunk_size=1,
            )
        assert comparable_rows(table) == baseline

    def test_serial_execution_warns_that_cell_timeout_is_inert(self, sweep):
        # workers=1 runs inline: there is no supervising pool to kill, so
        # hang detection silently cannot happen — the user must be told.
        with pytest.warns(SweepDegradationWarning, match="serial"):
            run_sweep_parallel(sweep, workers=1, cell_timeout=30.0)

    def test_hang_quarantined_under_skip(self, sweep):
        table = quiet_sweep(
            sweep,
            workers=2,
            fault_plan=FaultPlan().hang(1, seconds=60.0, attempts=9),
            cell_timeout=1.0,
            retries=0,
            on_error="skip",
            backoff=0.0,
            transfer="pickle",
            chunk_size=1,
        )
        assert [f["cell_index"] for f in table.failures] == [1]
        assert "hung" in table.failures[0]["error"]
        assert len(table) == 6  # three surviving cells x two replicates


def make_supervisor(sweep, **overrides):
    """A bare supervisor over the fixture sweep's cells, for unit tests."""
    from repro.experiments.parallel import _SweepSupervisor

    settings = dict(
        cells=list(sweep.cells()),
        resumed={},
        checkpoint=None,
        progress=None,
        ensemble_size=None,
        transfer="pickle",
        retries=0,
        backoff=0.0,
        cell_timeout=None,
        on_error="skip",
        respawn_budget=2,
        fault_plan=None,
        sweep_seed=7,
        workers=2,
        chunk_size=1,
    )
    settings.update(overrides)
    return _SweepSupervisor(**settings)


def failed_chunk_future(index: int, name: str):
    """A settled future/chunk pair carrying a genuine cell failure."""
    from concurrent.futures import Future

    from repro.experiments.parallel import _InflightChunk

    future = Future()
    future.set_exception(
        SweepCellError(
            f"sweep cell {index} ({name!r}) failed",
            cell_index=index,
            cell_name=name,
            traceback_text="worker traceback",
        )
    )
    return future, _InflightChunk([index], [0])


class TestDrainInflight:
    # A chunk can complete with a genuine SweepCellError in the window
    # between the hang/breakage being noticed and the pool kill.  That
    # failure must be charged like any main-loop failure — not swallowed
    # and rescheduled for free, which would defer abort policies by a full
    # wasted re-execution.

    def test_real_cell_error_is_charged_not_rescheduled_free(self, sweep):
        supervisor = make_supervisor(sweep, on_error="skip", retries=0)
        future, info = failed_chunk_future(2, sweep.name)
        supervisor.unconsumed.add(future)
        ready = []
        supervisor._drain_inflight(
            ready, {future: info}, hung=set(), charge_breakage=True
        )
        assert supervisor.failures[2] == 1
        assert supervisor.quarantined[2]["traceback"] == "worker traceback"
        assert ready == []  # settled by quarantine, nothing rescheduled

    def test_real_cell_error_consumes_retry_budget(self, sweep):
        supervisor = make_supervisor(sweep, on_error="retry", retries=2)
        future, info = failed_chunk_future(1, sweep.name)
        ready = []
        supervisor._drain_inflight(ready, {future: info}, hung=set())
        assert supervisor.failures[1] == 1
        assert [indices for _, indices in ready] == [[1]]

    def test_real_cell_error_aborts_under_raise_policy(self, sweep):
        supervisor = make_supervisor(sweep, on_error="raise")
        future, info = failed_chunk_future(0, sweep.name)
        with pytest.raises(SweepCellError, match="cell 0"):
            supervisor._drain_inflight(
                [], {future: info}, hung=set(), charge_breakage=True
            )


class TestKillFault:
    def test_worker_kill_respawns_and_recovers(self, sweep, baseline):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = run_sweep_parallel(
                sweep,
                workers=2,
                fault_plan=FaultPlan().kill(1),
                retries=1,
                on_error="retry",
                backoff=0.0,
                transfer="pickle",
                chunk_size=1,
            )
        assert comparable_rows(table) == baseline
        messages = [str(w.message) for w in caught]
        assert any("respawning" in m for m in messages)

    def test_kill_attributed_to_running_cell_and_quarantined(self):
        # One chunk of two cells run sequentially by one worker: cell 0
        # finishes (breadcrumb: done), cell 1 SIGKILLs the worker mid-run
        # (breadcrumb: started, no done).  The supervisor must charge cell 1
        # only, and cell 0 — whose rows died with the worker — reruns free.
        base = ModelConfig.square(side=10, horizon=1, tau=0.3)
        two = SweepSpec(
            name="kill-pair",
            base_config=base,
            taus=[0.3, 0.35],
            n_replicates=2,
            seed=7,
        )
        expected = comparable_rows(run_sweep_parallel(two, workers=1))
        table = quiet_sweep(
            two,
            workers=2,
            fault_plan=FaultPlan().kill(1, attempts=99),
            retries=0,
            on_error="skip",
            backoff=0.0,
            transfer="pickle",
            chunk_size=2,
        )
        assert [f["cell_index"] for f in table.failures] == [1]
        assert "pool broke" in table.failures[0]["error"]
        assert comparable_rows(table) == expected[:2]


class TestCorruptShmFault:
    def test_decode_failure_retried_to_identical_rows(self, sweep, baseline):
        table = quiet_sweep(
            sweep,
            workers=2,
            fault_plan=FaultPlan().corrupt_shm(0),
            retries=2,
            on_error="retry",
            backoff=0.0,
            transfer="shm",
            chunk_size=2,
        )
        assert comparable_rows(table) == baseline
        assert shm.segment_ledger().pending() == []

    def test_persistent_corruption_quarantines(self, sweep):
        table = quiet_sweep(
            sweep,
            workers=2,
            fault_plan=FaultPlan().corrupt_shm(1, attempts=99),
            retries=1,
            on_error="skip",
            backoff=0.0,
            transfer="shm",
            chunk_size=1,
        )
        assert [f["cell_index"] for f in table.failures] == [1]
        assert "decode" in table.failures[0]["error"]
        assert len(table) == 6

    def test_repeated_failures_demote_transfer_to_pickle(self, sweep, baseline):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = run_sweep_parallel(
                sweep,
                workers=2,
                fault_plan=FaultPlan().corrupt_shm(0, attempts=99),
                retries=5,
                on_error="retry",
                backoff=0.0,
                transfer="shm",
                chunk_size=1,
            )
        # After demotion the chunk rides pickle, the fault no longer applies
        # (it only corrupts shm segments) and the sweep completes fully.
        assert comparable_rows(table) == baseline
        messages = [str(w.message) for w in caught]
        assert any("demoting result transfer to pickle" in m for m in messages)


class TestSerialFallback:
    def test_respawn_budget_exhaustion_finishes_serially(self, sweep, baseline):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = run_sweep_parallel(
                sweep,
                workers=2,
                fault_plan=FaultPlan().kill(0, attempts=2).kill(3, attempts=2),
                retries=3,
                on_error="retry",
                backoff=0.0,
                respawn_budget=1,
                transfer="pickle",
                chunk_size=1,
            )
        assert comparable_rows(table) == baseline
        messages = [str(w.message) for w in caught]
        assert any("respawn budget" in m and "serially" in m for m in messages)


class TestBackoffSchedule:
    def test_backoff_is_deterministic_in_its_inputs(self):
        assert backoff_delay(7, 3, 1, 0.05) == backoff_delay(7, 3, 1, 0.05)
        assert backoff_delay(7, 3, 1, 0.05) != backoff_delay(8, 3, 1, 0.05)
        assert backoff_delay(7, 3, 1, 0.05) != backoff_delay(7, 4, 1, 0.05)

    def test_backoff_grows_exponentially_with_jitter_bounds(self):
        for failures in (1, 2, 3, 4):
            delay = backoff_delay(7, 3, failures, 0.05)
            scale = 0.05 * 2.0 ** (failures - 1)
            assert 0.5 * scale <= delay < scale

    def test_zero_base_disables_waiting(self):
        assert backoff_delay(7, 3, 5, 0.0) == 0.0
        assert backoff_delay(7, 3, 0, 0.05) == 0.0


class TestSegmentLedger:
    def test_double_free_raises(self):
        ledger = shm.SegmentLedger()
        ledger.track("psm_test_segment")
        ledger.mark_released("psm_test_segment")
        with pytest.raises(ExperimentError, match="double free"):
            ledger.mark_released("psm_test_segment")

    def test_pending_reports_leaks(self):
        ledger = shm.SegmentLedger()
        ledger.track("psm_a")
        ledger.track("psm_b")
        ledger.mark_released("psm_a")
        assert ledger.pending() == ["psm_b"]

    def test_recycled_name_is_trackable_again(self):
        ledger = shm.SegmentLedger()
        ledger.track("psm_a")
        ledger.mark_released("psm_a")
        ledger.track("psm_a")  # the OS recycled the name for a new segment
        ledger.mark_released("psm_a")

    def test_fault_free_shm_sweep_leaves_no_pending_segments(self, sweep):
        table = run_sweep_parallel(sweep, workers=2, transfer="shm")
        assert len(table) == 8
        assert shm.segment_ledger().pending() == []


class TestSupervisorParameterValidation:
    def test_bad_on_error_rejected(self, sweep):
        with pytest.raises(ExperimentError, match="on_error"):
            run_sweep_parallel(sweep, workers=1, on_error="explode")

    def test_negative_retries_rejected(self, sweep):
        with pytest.raises(ExperimentError, match="retries"):
            run_sweep_parallel(sweep, workers=1, retries=-1)

    def test_nonpositive_cell_timeout_rejected(self, sweep):
        with pytest.raises(ExperimentError, match="cell_timeout"):
            run_sweep_parallel(sweep, workers=1, cell_timeout=0.0)

    def test_negative_respawn_budget_rejected(self, sweep):
        with pytest.raises(ExperimentError, match="respawn_budget"):
            run_sweep_parallel(sweep, workers=1, respawn_budget=-1)


class TestSweepCellErrorTraceback:
    def test_traceback_survives_pickling(self):
        import pickle

        error = SweepCellError(
            "cell 3 failed",
            cell_index=3,
            cell_name="cell-3",
            traceback_text="Traceback (most recent call last):\n  boom\n",
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.traceback_text == error.traceback_text
        assert "boom" in str(clone)

    def test_str_without_traceback_is_plain_message(self):
        error = SweepCellError("cell 3 failed", cell_index=3)
        assert str(error) == "cell 3 failed"
