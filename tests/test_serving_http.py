"""HTTP query-service tests: routes, status mapping, live cache counters."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.experiments.checkpoint import SUMMARY_FORMAT, SUMMARY_NAME
from repro.serving import LRUCache, make_server

from test_serving_query import grid_cells, write_store


@pytest.fixture
def service(tmp_path):
    """A running ephemeral-port server over a synthetic four-cell store."""
    store = write_store(tmp_path / "store", grid_cells(values=[1.0, 2.0, 3.0, 4.0]))
    server = make_server(store, port=0, interpolate=True, cache=LRUCache(4))
    thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(base, path):
    """GET a path and return ``(status, decoded JSON body)``."""
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return response.status, json.loads(response.read())


def get_error(base, path):
    """GET a path expected to fail; return ``(status, decoded JSON body)``."""
    try:
        urllib.request.urlopen(f"{base}{path}", timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestRoutes:
    def test_healthz(self, service):
        assert get(service, "/healthz") == (200, {"ok": True, "draining": False})

    def test_readyz(self, service):
        assert get(service, "/readyz") == (200, {"ready": True})

    def test_cells_lists_the_store(self, service):
        status, body = get(service, "/cells")
        assert status == 200
        assert len(body["cells"]) == 4

    def test_query_via_point_parameter(self, service):
        status, body = get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        assert status == 200
        assert body["source"] == "exact"
        assert body["metrics"]["score"]["mean"] == 1.0

    def test_query_via_individual_axis_parameters(self, service):
        status, body = get(service, "/query?tau=0.4&rho=0.5&w=2")
        assert status == 200
        assert body["source"] == "interpolated"
        assert body["metrics"]["score"]["mean"] == pytest.approx(2.5)

    def test_interpolate_flag_overrides_per_request(self, service):
        _, body = get(service, "/query?tau=0.4&rho=0.5&w=2&interpolate=0")
        assert body["source"] == "nearest"

    def test_unknown_path_is_404_with_route_list(self, service):
        status, body = get_error(service, "/nope")
        assert status == 404
        assert "/query" in body["routes"]


class TestErrorMapping:
    def test_malformed_query_is_400(self, service):
        status, body = get_error(service, "/query?point=sigma=1")
        assert status == 400
        assert "unknown query axis" in body["error"]

    def test_missing_query_is_400(self, service):
        status, body = get_error(service, "/query")
        assert status == 400
        assert "no query given" in body["error"]

    def test_bad_boolean_is_400(self, service):
        status, _ = get_error(service, "/query?tau=0.3&rho=0.4&interpolate=maybe")
        assert status == 400

    def test_query_miss_is_404(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells())
        server = make_server(store, port=0, max_distance=0.01)
        thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            status, body = get_error(
                f"http://{host}:{port}", "/query?tau=0.9&rho=0.9&w=2"
            )
            assert status == 404
            assert body["miss"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestHandlerHardening:
    """The service never answers with a traceback or HTML error page."""

    def test_non_numeric_axis_parameter_is_json_400(self, service):
        status, body = get_error(service, "/query?tau=abc&rho=0.4&w=2")
        assert status == 400
        assert "non-numeric" in body["error"]

    def test_non_numeric_point_value_is_json_400(self, service):
        status, body = get_error(service, "/query?point=tau=oops,rho=0.4")
        assert status == 400
        assert "not a number" in body["error"]

    def test_bad_deadline_is_json_400(self, service):
        status, body = get_error(service, "/query?tau=0.3&rho=0.4&w=2&deadline=soon")
        assert status == 400
        assert "deadline" in body["error"]
        status, body = get_error(service, "/query?tau=0.3&rho=0.4&w=2&deadline=-1")
        assert status == 400

    def test_unknown_route_is_json_404(self, service):
        status, body = get_error(service, "/admin/../etc/passwd")
        assert status == 404
        assert body["routes"] == ["/query", "/stats", "/cells", "/healthz", "/readyz"]

    def test_oversized_request_line_is_json_not_html(self, service):
        status, body = get_error(service, "/query?point=" + "x" * 70000)
        assert status == 414
        assert "error" in body  # json.loads in get_error already proves JSON

    def test_unsupported_method_is_json(self, service):
        request = urllib.request.Request(f"{service}/query", method="POST")
        try:
            urllib.request.urlopen(request, data=b"{}", timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 501
            assert "error" in json.loads(exc.read())
        else:
            raise AssertionError("POST unexpectedly succeeded")

    def test_repeated_garbage_never_kills_the_service(self, service):
        for path in ("/query?point=,,=,", "/query?%ff=1", "/%00", "/query?w="):
            status, body = get_error(service, path)
            assert status in (400, 404)
            assert "error" in body
        assert get(service, "/healthz")[0] == 200


class TestStatsEndpoint:
    def test_counters_track_traffic(self, service):
        get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        get(service, "/query?point=rho=0.4,tau=0.3,w=2")  # same resolved point
        status, body = get(service, "/stats")
        assert status == 200
        assert body["cache"]["capacity"] == 4
        assert body["cache"]["misses"] == 1
        assert body["cache"]["hits"] == 2
        assert body["store"]["n_cells"] == 4
        assert body["store"]["n_answerable"] == 4
        assert body["policy"]["interpolate"] is True
        assert body["policy"]["on_miss"] == "error"

    def test_eviction_counter_over_capacity_traffic(self, service):
        points = [
            (0.3, 0.4), (0.3, 0.6), (0.5, 0.4), (0.5, 0.6),
            (0.35, 0.45), (0.45, 0.55),
        ]
        for tau, rho in points:
            get(service, f"/query?tau={tau}&rho={rho}&w=2")
        _, body = get(service, "/stats")
        assert body["cache"]["size"] == 4
        assert body["cache"]["evictions"] == 2

    def test_concurrent_requests_are_answered_consistently(self, service):
        def fetch(_):
            _, body = get(service, "/query?point=tau=0.3,rho=0.4,w=2")
            return body["metrics"]["score"]["mean"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            values = list(pool.map(fetch, range(32)))
        assert values == [1.0] * 32
        _, body = get(service, "/stats")
        assert body["cache"]["hits"] + body["cache"]["misses"] == 32


@contextmanager
def running_server(store, **options):
    """A live ephemeral-port server; yields ``(base_url, server)``."""
    server = make_server(store, port=0, **options)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    thread.start()
    try:
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def block_compute(engine, release, answer_value=1.0):
    """Patch the engine's simulation hook to block until ``release`` is set."""
    def blocked(point):
        release.wait(timeout=30)
        return {
            "point": point,
            "source": "computed",
            "distance": None,
            "metrics": {"score": {"mean": answer_value}},
            "cells": [],
        }
    engine._compute_ungated = blocked


class TestOverloadLadder:
    def test_saturated_gate_with_no_fallback_is_429_with_retry_after(
        self, tmp_path
    ):
        store = write_store(tmp_path / "store", [])
        with running_server(
            store, on_miss="compute", max_compute=1, retry_after=7
        ) as (base, server):
            release = threading.Event()
            block_compute(server.engine, release)
            with ThreadPoolExecutor(max_workers=1) as pool:
                holder = pool.submit(get, base, "/query?tau=0.3&rho=0.4&w=2")
                while server.engine.gate.stats()["inflight"] == 0:
                    pass
                try:
                    urllib.request.urlopen(
                        f"{base}/query?tau=0.9&rho=0.9&w=2", timeout=10
                    )
                except urllib.error.HTTPError as exc:
                    assert exc.code == 429
                    assert exc.headers["Retry-After"] == "7"
                    assert json.loads(exc.read())["retry_after"] == 7.0
                else:
                    raise AssertionError("expected 429")
                release.set()
                status, body = holder.result(timeout=30)
            assert status == 200 and body["source"] == "computed"
            _, stats = get(base, "/stats")
            assert stats["compute"]["rejected"] == 1
            assert stats["compute"]["degraded"] == 0
            assert stats["compute"]["inflight"] == 0

    def test_saturated_gate_degrades_to_nearest_cell(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells())
        with running_server(
            store, on_miss="compute", max_compute=1, max_distance=0.01
        ) as (base, server):
            release = threading.Event()
            block_compute(server.engine, release)
            with ThreadPoolExecutor(max_workers=1) as pool:
                holder = pool.submit(get, base, "/query?tau=0.9&rho=0.9&w=2")
                while server.engine.gate.stats()["inflight"] == 0:
                    pass
                status, body = get(base, "/query?tau=0.8&rho=0.8&w=2")
                release.set()
                holder.result(timeout=30)
            assert status == 200
            assert body["degraded"] is True
            assert body["source"] == "nearest"
            assert body["cached"] is False
            _, stats = get(base, "/stats")
            assert stats["compute"]["degraded"] == 1
            assert stats["compute"]["rejected"] == 0
            # degraded answers are never cached: asking again degrades again
            # (the gate is free now, so this one computes instead)

    def test_follower_deadline_expires_as_504(self, tmp_path):
        store = write_store(tmp_path / "store", [])
        with running_server(store, on_miss="compute") as (base, server):
            release = threading.Event()
            block_compute(server.engine, release)
            with ThreadPoolExecutor(max_workers=1) as pool:
                leader = pool.submit(get, base, "/query?tau=0.3&rho=0.4&w=2")
                while server.engine.cache.stats()["inflight"] == 0:
                    pass
                status, body = get_error(
                    base, "/query?tau=0.3&rho=0.4&w=2&deadline=0.05"
                )
                assert status == 504
                assert body["deadline"] is True
                release.set()
                assert leader.result(timeout=30)[0] == 200
            _, stats = get(base, "/stats")
            assert stats["compute"]["timeouts"] == 1

    def test_single_flight_over_http(self, tmp_path):
        """Concurrent identical misses: one compute, exact coalesce stats."""
        store = write_store(tmp_path / "store", [])
        with running_server(store, on_miss="compute") as (base, server):
            release = threading.Event()
            calls = []
            original = server.engine._compute_ungated

            def counting(point):
                calls.append(1)
                release.wait(timeout=30)
                return {
                    "point": point, "source": "computed", "distance": None,
                    "metrics": {"score": {"mean": 9.0}}, "cells": [],
                }
            server.engine._compute_ungated = counting
            n = 8
            with ThreadPoolExecutor(max_workers=n) as pool:
                futures = [
                    pool.submit(get, base, "/query?tau=0.3&rho=0.4&w=2")
                    for _ in range(n)
                ]
                while server.engine.cache.stats()["inflight"] == 0:
                    pass
                release.set()
                results = [future.result(timeout=30) for future in futures]
            assert len(calls) == 1
            assert all(status == 200 for status, _ in results)
            means = {body["metrics"]["score"]["mean"] for _, body in results}
            assert means == {9.0}
            _, stats = get(base, "/stats")
            assert stats["cache"]["misses"] == 1
            # late arrivals may hit the cache instead of coalescing; both
            # paths must account exactly
            assert (
                stats["cache"]["coalesced"] + stats["cache"]["hits"] == n - 1
            )
            server.engine._compute_ungated = original


class TestDrain:
    def test_draining_service_rejects_new_work_but_stays_alive(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells())
        with running_server(store) as (base, server):
            assert get(base, "/readyz") == (200, {"ready": True})
            assert server.service.drain(timeout=1) is True
            status, body = get_error(base, "/readyz")
            assert status == 503
            assert body == {"ready": False, "draining": True}
            status, body = get_error(base, "/query?tau=0.3&rho=0.4&w=2")
            assert status == 503
            assert body["error"] == "service is draining"
            # liveness is unaffected: the process is up, just unready
            assert get(base, "/healthz") == (200, {"ok": True, "draining": True})

    def test_drain_waits_for_inflight_requests(self, tmp_path):
        store = write_store(tmp_path / "store", [])
        with running_server(store, on_miss="compute") as (base, server):
            release = threading.Event()
            block_compute(server.engine, release, answer_value=5.0)
            with ThreadPoolExecutor(max_workers=2) as pool:
                inflight = pool.submit(get, base, "/query?tau=0.3&rho=0.4&w=2")
                while server.service.stats()["inflight_requests"] == 0:
                    pass
                # a zero-timeout drain cannot finish while work is in flight
                assert server.service.drain(timeout=0.05) is False
                drain = pool.submit(server.service.drain, 30)
                release.set()
                status, body = inflight.result(timeout=30)
                assert status == 200
                assert body["metrics"]["score"]["mean"] == 5.0
                assert drain.result(timeout=30) is True
            assert server.service.stats()["inflight_requests"] == 0


class TestServiceStats:
    def test_stats_carry_service_and_compute_sections(self, service):
        get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        status, body = get(service, "/stats")
        assert status == 200
        assert body["service"]["draining"] is False
        assert body["service"]["requests_total"] >= 2  # the query + this /stats
        assert body["service"]["inflight_requests"] >= 1  # this /stats itself
        assert body["service"]["refreshes"] == 0
        assert body["compute"] == {
            "limit": None,
            "inflight": 0,
            "rejected": 0,
            "degraded": 0,
            "timeouts": 0,
        }
        assert body["cache"]["coalesced"] == 0
        assert body["cache"]["inflight"] == 0
        assert body["store"]["generation"] == 0


class TestRealStoreSmoke:
    def test_serves_a_real_sweep_store(self, tmp_path):
        """End-to-end: real checkpointed sweep → HTTP answers + summary file."""
        from repro.core.config import ModelConfig
        from repro.experiments.parallel import run_sweep_parallel
        from repro.experiments.spec import SweepSpec

        directory = tmp_path / "store"
        sweep = SweepSpec(
            name="http-smoke",
            base_config=ModelConfig.square(side=10, horizon=1, tau=0.3),
            taus=(0.3, 0.45),
            n_replicates=1,
            seed=3,
        )
        run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert json.loads((directory / SUMMARY_NAME).read_text())[
            "format"
        ] == SUMMARY_FORMAT

        server = make_server(directory, port=0)
        thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, body = get(base, "/query?tau=0.3")  # rho, w pinned by store
            assert status == 200
            assert body["source"] == "exact"
            assert "final_unhappy_fraction" in body["metrics"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
