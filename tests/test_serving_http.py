"""HTTP query-service tests: routes, status mapping, live cache counters."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.checkpoint import SUMMARY_FORMAT, SUMMARY_NAME
from repro.serving import LRUCache, make_server

from test_serving_query import grid_cells, write_store


@pytest.fixture
def service(tmp_path):
    """A running ephemeral-port server over a synthetic four-cell store."""
    store = write_store(tmp_path / "store", grid_cells(values=[1.0, 2.0, 3.0, 4.0]))
    server = make_server(store, port=0, interpolate=True, cache=LRUCache(4))
    thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(base, path):
    """GET a path and return ``(status, decoded JSON body)``."""
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return response.status, json.loads(response.read())


def get_error(base, path):
    """GET a path expected to fail; return ``(status, decoded JSON body)``."""
    try:
        urllib.request.urlopen(f"{base}{path}", timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{path} unexpectedly succeeded")


class TestRoutes:
    def test_healthz(self, service):
        assert get(service, "/healthz") == (200, {"ok": True})

    def test_cells_lists_the_store(self, service):
        status, body = get(service, "/cells")
        assert status == 200
        assert len(body["cells"]) == 4

    def test_query_via_point_parameter(self, service):
        status, body = get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        assert status == 200
        assert body["source"] == "exact"
        assert body["metrics"]["score"]["mean"] == 1.0

    def test_query_via_individual_axis_parameters(self, service):
        status, body = get(service, "/query?tau=0.4&rho=0.5&w=2")
        assert status == 200
        assert body["source"] == "interpolated"
        assert body["metrics"]["score"]["mean"] == pytest.approx(2.5)

    def test_interpolate_flag_overrides_per_request(self, service):
        _, body = get(service, "/query?tau=0.4&rho=0.5&w=2&interpolate=0")
        assert body["source"] == "nearest"

    def test_unknown_path_is_404_with_route_list(self, service):
        status, body = get_error(service, "/nope")
        assert status == 404
        assert "/query" in body["routes"]


class TestErrorMapping:
    def test_malformed_query_is_400(self, service):
        status, body = get_error(service, "/query?point=sigma=1")
        assert status == 400
        assert "unknown query axis" in body["error"]

    def test_missing_query_is_400(self, service):
        status, body = get_error(service, "/query")
        assert status == 400
        assert "no query given" in body["error"]

    def test_bad_boolean_is_400(self, service):
        status, _ = get_error(service, "/query?tau=0.3&rho=0.4&interpolate=maybe")
        assert status == 400

    def test_query_miss_is_404(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells())
        server = make_server(store, port=0, max_distance=0.01)
        thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            status, body = get_error(
                f"http://{host}:{port}", "/query?tau=0.9&rho=0.9&w=2"
            )
            assert status == 404
            assert body["miss"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestStatsEndpoint:
    def test_counters_track_traffic(self, service):
        get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        get(service, "/query?point=tau=0.3,rho=0.4,w=2")
        get(service, "/query?point=rho=0.4,tau=0.3,w=2")  # same resolved point
        status, body = get(service, "/stats")
        assert status == 200
        assert body["cache"]["capacity"] == 4
        assert body["cache"]["misses"] == 1
        assert body["cache"]["hits"] == 2
        assert body["store"]["n_cells"] == 4
        assert body["store"]["n_answerable"] == 4
        assert body["policy"]["interpolate"] is True
        assert body["policy"]["on_miss"] == "error"

    def test_eviction_counter_over_capacity_traffic(self, service):
        points = [
            (0.3, 0.4), (0.3, 0.6), (0.5, 0.4), (0.5, 0.6),
            (0.35, 0.45), (0.45, 0.55),
        ]
        for tau, rho in points:
            get(service, f"/query?tau={tau}&rho={rho}&w=2")
        _, body = get(service, "/stats")
        assert body["cache"]["size"] == 4
        assert body["cache"]["evictions"] == 2

    def test_concurrent_requests_are_answered_consistently(self, service):
        def fetch(_):
            _, body = get(service, "/query?point=tau=0.3,rho=0.4,w=2")
            return body["metrics"]["score"]["mean"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            values = list(pool.map(fetch, range(32)))
        assert values == [1.0] * 32
        _, body = get(service, "/stats")
        assert body["cache"]["hits"] + body["cache"]["misses"] == 32


class TestRealStoreSmoke:
    def test_serves_a_real_sweep_store(self, tmp_path):
        """End-to-end: real checkpointed sweep → HTTP answers + summary file."""
        from repro.core.config import ModelConfig
        from repro.experiments.parallel import run_sweep_parallel
        from repro.experiments.spec import SweepSpec

        directory = tmp_path / "store"
        sweep = SweepSpec(
            name="http-smoke",
            base_config=ModelConfig.square(side=10, horizon=1, tau=0.3),
            taus=(0.3, 0.45),
            n_replicates=1,
            seed=3,
        )
        run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
        assert json.loads((directory / SUMMARY_NAME).read_text())[
            "format"
        ] == SUMMARY_FORMAT

        server = make_server(directory, port=0)
        thread = threading.Thread(target=lambda: server.serve_forever(poll_interval=0.05), daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, body = get(base, "/query?tau=0.3")  # rho, w pinned by store
            assert status == 200
            assert body["source"] == "exact"
            assert "final_unhappy_fraction" in body["metrics"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
