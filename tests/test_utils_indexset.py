"""Tests for the dynamic index sampler, including a hypothesis model check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.indexset import IndexSampler


class TestBasics:
    def test_empty_on_creation(self):
        sampler = IndexSampler(10)
        assert len(sampler) == 0
        assert 3 not in sampler

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IndexSampler(0)

    def test_add_and_contains(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        assert 4 in sampler
        assert len(sampler) == 1

    def test_add_idempotent(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        sampler.add(4)
        assert len(sampler) == 1

    def test_remove(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        sampler.remove(4)
        assert 4 not in sampler
        assert len(sampler) == 0

    def test_remove_missing_is_noop(self):
        sampler = IndexSampler(10)
        sampler.remove(4)
        assert len(sampler) == 0

    def test_out_of_range_rejected(self):
        sampler = IndexSampler(10)
        with pytest.raises(IndexError):
            sampler.add(10)
        with pytest.raises(IndexError):
            sampler.remove(-1)

    def test_update_membership(self):
        sampler = IndexSampler(5)
        sampler.update_membership(2, True)
        assert 2 in sampler
        sampler.update_membership(2, False)
        assert 2 not in sampler

    def test_clear(self):
        sampler = IndexSampler(8)
        for i in range(8):
            sampler.add(i)
        sampler.clear()
        assert len(sampler) == 0
        assert 3 not in sampler

    def test_to_array_sorted(self):
        sampler = IndexSampler(10)
        for i in (7, 1, 5):
            sampler.add(i)
        assert sampler.to_array().tolist() == [1, 5, 7]


class TestSampling:
    def test_sample_from_empty_raises(self, rng):
        with pytest.raises(IndexError):
            IndexSampler(5).sample(rng)

    def test_sample_returns_member(self, rng):
        sampler = IndexSampler(100)
        members = {3, 17, 42, 99}
        for member in members:
            sampler.add(member)
        for _ in range(50):
            assert sampler.sample(rng) in members

    def test_sample_is_roughly_uniform(self, rng):
        sampler = IndexSampler(4)
        for i in range(4):
            sampler.add(i)
        counts = np.zeros(4)
        n_draws = 4000
        for _ in range(n_draws):
            counts[sampler.sample(rng)] += 1
        # Each index should get roughly a quarter of the draws.
        assert np.all(counts > n_draws / 4 * 0.7)
        assert np.all(counts < n_draws / 4 * 1.3)


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=19)),
        max_size=200,
    )
)
def test_matches_reference_set(operations):
    """The sampler behaves exactly like a Python set under add/remove."""
    sampler = IndexSampler(20)
    reference: set[int] = set()
    for add, index in operations:
        if add:
            sampler.add(index)
            reference.add(index)
        else:
            sampler.remove(index)
            reference.discard(index)
        assert len(sampler) == len(reference)
    assert sampler.to_array().tolist() == sorted(reference)
    for index in range(20):
        assert (index in sampler) == (index in reference)
