"""Tests for the dynamic index sampler, including a hypothesis model check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.indexset import IndexSampler


class TestBasics:
    def test_empty_on_creation(self):
        sampler = IndexSampler(10)
        assert len(sampler) == 0
        assert 3 not in sampler

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IndexSampler(0)

    def test_add_and_contains(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        assert 4 in sampler
        assert len(sampler) == 1

    def test_add_idempotent(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        sampler.add(4)
        assert len(sampler) == 1

    def test_remove(self):
        sampler = IndexSampler(10)
        sampler.add(4)
        sampler.remove(4)
        assert 4 not in sampler
        assert len(sampler) == 0

    def test_remove_missing_is_noop(self):
        sampler = IndexSampler(10)
        sampler.remove(4)
        assert len(sampler) == 0

    def test_out_of_range_rejected(self):
        sampler = IndexSampler(10)
        with pytest.raises(IndexError):
            sampler.add(10)
        with pytest.raises(IndexError):
            sampler.remove(-1)

    def test_update_membership(self):
        sampler = IndexSampler(5)
        sampler.update_membership(2, True)
        assert 2 in sampler
        sampler.update_membership(2, False)
        assert 2 not in sampler

    def test_clear(self):
        sampler = IndexSampler(8)
        for i in range(8):
            sampler.add(i)
        sampler.clear()
        assert len(sampler) == 0
        assert 3 not in sampler

    def test_to_array_sorted(self):
        sampler = IndexSampler(10)
        for i in (7, 1, 5):
            sampler.add(i)
        assert sampler.to_array().tolist() == [1, 5, 7]


class TestSampling:
    def test_sample_from_empty_raises(self, rng):
        with pytest.raises(IndexError):
            IndexSampler(5).sample(rng)

    def test_sample_returns_member(self, rng):
        sampler = IndexSampler(100)
        members = {3, 17, 42, 99}
        for member in members:
            sampler.add(member)
        for _ in range(50):
            assert sampler.sample(rng) in members

    def test_sample_is_roughly_uniform(self, rng):
        sampler = IndexSampler(4)
        for i in range(4):
            sampler.add(i)
        counts = np.zeros(4)
        n_draws = 4000
        for _ in range(n_draws):
            counts[sampler.sample(rng)] += 1
        # Each index should get roughly a quarter of the draws.
        assert np.all(counts > n_draws / 4 * 0.7)
        assert np.all(counts < n_draws / 4 * 1.3)


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=19)),
        max_size=200,
    )
)
def test_matches_reference_set(operations):
    """The sampler behaves exactly like a Python set under add/remove."""
    sampler = IndexSampler(20)
    reference: set[int] = set()
    for add, index in operations:
        if add:
            sampler.add(index)
            reference.add(index)
        else:
            sampler.remove(index)
            reference.discard(index)
        assert len(sampler) == len(reference)
    assert sampler.to_array().tolist() == sorted(reference)
    for index in range(20):
        assert (index in sampler) == (index in reference)


class TestBatchedIndexSetBasics:
    def test_validation(self):
        from repro.utils.indexset import BatchedIndexSet

        with pytest.raises(ValueError):
            BatchedIndexSet(0, 5)
        with pytest.raises(ValueError):
            BatchedIndexSet(3, 0)
        with pytest.raises(ValueError):
            BatchedIndexSet(2, 5).fill_from_masks(np.zeros((3, 5), dtype=bool))

    def test_fill_from_masks_builds_sorted_rows(self):
        from repro.utils.indexset import BatchedIndexSet

        masks = np.array(
            [[True, False, True, True], [False, False, False, True]]
        )
        batched = BatchedIndexSet(2, 4)
        batched.fill_from_masks(masks)
        assert batched.counts.tolist() == [3, 1]
        assert batched.packed_members(0).tolist() == [0, 2, 3]
        assert batched.packed_members(1).tolist() == [3]
        assert batched.contains(0, 2) and not batched.contains(1, 0)

    def test_add_many_skips_present_members(self):
        from repro.utils.indexset import BatchedIndexSet

        batched = BatchedIndexSet(2, 6)
        batched.add_many([0, 0, 1], [4, 1, 5])
        batched.add_many([0, 0], [4, 2])  # 4 already present
        assert batched.packed_members(0).tolist() == [4, 1, 2]
        assert batched.packed_members(1).tolist() == [5]

    def test_remove_many_and_clear(self):
        from repro.utils.indexset import BatchedIndexSet

        batched = BatchedIndexSet(1, 6)
        batched.add_many([0, 0, 0], [1, 3, 5])
        batched.remove_many([0, 0], [3, 0])  # 0 absent -> no-op
        assert batched.to_array(0).tolist() == [1, 5]
        batched.clear()
        assert batched.counts.tolist() == [0]

    def test_sample_rows_gathers_members(self):
        from repro.utils.indexset import BatchedIndexSet

        batched = BatchedIndexSet(2, 8)
        batched.add_many([0, 0, 1, 1], [7, 2, 0, 4])
        flats = batched.sample_rows(np.array([0, 1]), np.array([1, 0]))
        assert flats.tolist() == [2, 0]

    def test_views_expose_live_buffers(self):
        from repro.utils.indexset import BatchedIndexSet

        batched = BatchedIndexSet(1, 4)
        batched.add_many([0], [3])
        assert batched.counts_view()[0] == 1
        assert batched.members_view()[0] == 3


def _reference_sets(n_sets, capacity):
    from repro.core.ensemble import _ReplicaIndexSet

    return [_ReplicaIndexSet(capacity) for _ in range(n_sets)]


def _assert_layouts_equal(batched, references):
    """Packed layout (not just membership) must match the scalar reference."""
    for row, reference in enumerate(references):
        assert batched.count(row) == len(reference)
        assert (
            batched.packed_members(row).tolist()
            == reference._members[: len(reference)]
        )


@settings(max_examples=50, deadline=None)
@given(
    initial=st.lists(
        st.lists(st.booleans(), min_size=12, max_size=12), min_size=3, max_size=3
    ),
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # row
            st.integers(min_value=0, max_value=11),  # index
            st.booleans(),  # desired membership
        ),
        max_size=120,
    ),
)
def test_batched_matches_replica_reference_under_ordered_ops(initial, operations):
    """BatchedIndexSet == _ReplicaIndexSet layout-for-layout: the bulk build
    plus any ordered membership stream leave identical packed members, which
    is exactly the property the ensemble's RNG-draw equivalence needs."""
    from repro.utils.indexset import BatchedIndexSet

    masks = np.array(initial, dtype=bool)
    batched = BatchedIndexSet(3, 12)
    batched.fill_from_masks(masks)
    references = _reference_sets(3, 12)
    for row in range(3):
        for index in np.flatnonzero(masks[row]):
            references[row].add(int(index))
    _assert_layouts_equal(batched, references)

    batched.apply_ops(
        [row for row, _, _ in operations],
        [index for _, index, _ in operations],
        [member for _, _, member in operations],
    )
    for row, index, member in operations:
        references[row].update_membership(index, member)
    _assert_layouts_equal(batched, references)


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # base row
            st.integers(min_value=0, max_value=9),  # index
            st.integers(min_value=1, max_value=3),  # toggled bits
            st.integers(min_value=0, max_value=3),  # member bits
        ),
        max_size=100,
    )
)
def test_apply_coded_ops_matches_pairwise_reference(operations):
    """The coded-op fast path equals the scalar pair of update_membership
    calls per site (bit 0 row first, then bit 1 row), in stream order."""
    from repro.utils.indexset import BatchedIndexSet

    n_base, capacity = 2, 10
    batched = BatchedIndexSet(2 * n_base, capacity)
    references = _reference_sets(2 * n_base, capacity)
    batched.apply_coded_ops(
        [row for row, _, _, _ in operations],
        [index for _, index, _, _ in operations],
        [toggled for _, _, toggled, _ in operations],
        [member for _, _, _, member in operations],
        n_base,
    )
    for row, index, toggled, member in operations:
        if toggled & 1:
            references[row].update_membership(index, bool(member & 1))
        if toggled & 2:
            references[row + n_base].update_membership(index, bool(member & 2))
    _assert_layouts_equal(batched, references)
