"""Tests for initial configuration generators."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.initializer import (
    checkerboard_configuration,
    density_sweep_configurations,
    planted_annulus_configuration,
    planted_block_configuration,
    planted_radical_region_configuration,
    radical_region_threshold,
    random_configuration,
    striped_configuration,
    uniform_configuration,
)
from repro.core.neighborhood import square_mask
from repro.errors import ConfigurationError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=40, horizon=2, tau=0.45)


class TestRandomConfiguration:
    def test_shape_matches_config(self, config):
        grid = random_configuration(config, seed=0)
        assert grid.shape == config.shape

    def test_deterministic_given_seed(self, config):
        a = random_configuration(config, seed=5)
        b = random_configuration(config, seed=5)
        assert a == b

    def test_different_seeds_differ(self, config):
        a = random_configuration(config, seed=1)
        b = random_configuration(config, seed=2)
        assert a != b

    def test_density_respected(self):
        config = ModelConfig.square(side=60, horizon=1, tau=0.4, density=0.8)
        grid = random_configuration(config, seed=0)
        assert 0.75 < grid.plus_fraction() < 0.85


class TestDeterministicPatterns:
    def test_uniform(self, config):
        grid = uniform_configuration(config, AgentType.MINUS)
        assert grid.count(AgentType.PLUS) == 0

    def test_checkerboard_is_balanced(self, config):
        grid = checkerboard_configuration(config)
        assert grid.count(AgentType.PLUS) == config.n_sites // 2

    def test_checkerboard_alternates(self, config):
        grid = checkerboard_configuration(config)
        assert grid.get(0, 0) != grid.get(0, 1)
        assert grid.get(0, 0) != grid.get(1, 0)
        assert grid.get(0, 0) == grid.get(1, 1)

    def test_stripes_width(self, config):
        grid = striped_configuration(config, stripe_width=4)
        assert grid.get(0, 0) == grid.get(3, 10)
        assert grid.get(0, 0) != grid.get(4, 10)

    def test_stripes_invalid_width(self, config):
        with pytest.raises(ConfigurationError):
            striped_configuration(config, stripe_width=0)


class TestPlantedBlock:
    def test_block_is_monochromatic(self, config):
        center = (20, 20)
        grid = planted_block_configuration(config, center, 3, AgentType.MINUS, seed=1)
        mask = square_mask(config.n_rows, config.n_cols, center, 3)
        assert np.all(grid.spins[mask] == -1)

    def test_background_is_random(self, config):
        grid = planted_block_configuration(config, (20, 20), 3, AgentType.MINUS, seed=1)
        outside = grid.spins[~square_mask(config.n_rows, config.n_cols, (20, 20), 3)]
        assert (outside == 1).any() and (outside == -1).any()


class TestPlantedAnnulus:
    def test_annulus_is_monochromatic(self, config):
        center = (20, 20)
        grid = planted_annulus_configuration(
            config, center, outer_radius=10.0, annulus_type=AgentType.PLUS, seed=2
        )
        from repro.core.neighborhood import annulus_mask

        width = np.sqrt(2.0) * config.horizon
        mask = annulus_mask(config.n_rows, config.n_cols, center, 10.0 - width, 10.0)
        assert np.all(grid.spins[mask] == 1)

    def test_interior_fill(self, config):
        grid = planted_annulus_configuration(
            config,
            (20, 20),
            outer_radius=10.0,
            annulus_type=AgentType.PLUS,
            interior_type=AgentType.PLUS,
            seed=2,
        )
        from repro.core.neighborhood import disc_mask

        disc = disc_mask(config.n_rows, config.n_cols, (20, 20), 10.0)
        assert np.all(grid.spins[disc] == 1)

    def test_radius_smaller_than_width_rejected(self, config):
        with pytest.raises(ConfigurationError):
            planted_annulus_configuration(config, (20, 20), outer_radius=1.0)


class TestPlantedRadicalRegion:
    def test_minority_count_below_threshold(self, config):
        center = (20, 20)
        epsilon_prime = 0.5
        grid = planted_radical_region_configuration(
            config, center, epsilon_prime, seed=3
        )
        radius = int((1 + epsilon_prime) * config.horizon)
        mask = square_mask(config.n_rows, config.n_cols, center, radius)
        minority = int(np.count_nonzero(grid.spins[mask] == -1))
        assert minority < radical_region_threshold(config, epsilon_prime)

    def test_explicit_minority_count(self, config):
        center = (20, 20)
        grid = planted_radical_region_configuration(
            config, center, 0.5, minority_count=2, seed=3
        )
        radius = int(1.5 * config.horizon)
        mask = square_mask(config.n_rows, config.n_cols, center, radius)
        assert int(np.count_nonzero(grid.spins[mask] == -1)) == 2

    def test_threshold_positive_for_reasonable_tau(self, config):
        assert radical_region_threshold(config, 0.5) > 0

    def test_threshold_zero_for_zero_tau(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.0)
        assert radical_region_threshold(config, 0.5) == 0

    def test_invalid_epsilon_rejected(self, config):
        with pytest.raises(ConfigurationError):
            planted_radical_region_configuration(config, (20, 20), 0.0)

    def test_too_many_minority_rejected(self, config):
        with pytest.raises(ConfigurationError):
            planted_radical_region_configuration(
                config, (20, 20), 0.5, minority_count=10**6
            )

    def test_region_too_large_for_grid_rejected(self):
        config = ModelConfig.square(side=9, horizon=4, tau=0.45)
        with pytest.raises(ConfigurationError):
            planted_radical_region_configuration(config, (4, 4), 0.9)


class TestDensitySweep:
    def test_one_grid_per_density(self, config):
        grids = density_sweep_configurations(config, [0.2, 0.5, 0.8], seed=0)
        assert len(grids) == 3

    def test_densities_monotone_in_plus_fraction(self, config):
        grids = density_sweep_configurations(config, [0.2, 0.8], seed=0)
        assert grids[0].plus_fraction() < grids[1].plus_fraction()
