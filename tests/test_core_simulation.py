"""Tests for the high-level simulation facade."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.initializer import uniform_configuration
from repro.core.simulation import Simulation, simulate
from repro.errors import StateError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


class TestSimulation:
    def test_run_to_termination(self, config):
        result = Simulation(config, seed=0).run()
        assert result.terminated
        assert result.final_spins.shape == config.shape

    def test_deterministic_given_seed(self, config):
        a = Simulation(config, seed=42).run()
        b = Simulation(config, seed=42).run()
        assert np.array_equal(a.final_spins, b.final_spins)
        assert a.n_flips == b.n_flips

    def test_different_seeds_differ(self, config):
        a = Simulation(config, seed=1).run()
        b = Simulation(config, seed=2).run()
        assert not np.array_equal(a.initial_spins, b.initial_spins)

    def test_initial_spins_preserved(self, config):
        simulation = Simulation(config, seed=3)
        initial = simulation.initial_spins
        result = simulation.run()
        assert np.array_equal(result.initial_spins, initial)
        assert not np.array_equal(result.initial_spins, result.final_spins)

    def test_run_twice_rejected(self, config):
        simulation = Simulation(config, seed=4)
        simulation.run()
        with pytest.raises(StateError):
            simulation.run()

    def test_flipped_fraction(self, config):
        result = Simulation(config, seed=5).run()
        changed = np.count_nonzero(result.initial_spins != result.final_spins)
        assert result.flipped_fraction == pytest.approx(changed / config.n_sites)

    def test_planted_initial_grid_used(self, config):
        grid = uniform_configuration(config, AgentType.MINUS)
        result = Simulation(config, seed=6, initial_grid=grid).run()
        assert result.n_flips == 0
        assert np.all(result.final_spins == -1)

    def test_initial_grid_not_mutated(self, config):
        grid = uniform_configuration(config, AgentType.MINUS)
        grid.set(0, 0, 1)
        before = grid.spins.copy()
        Simulation(config, seed=7, initial_grid=grid).run()
        assert np.array_equal(grid.spins, before)

    def test_max_flips_budget(self, config):
        result = Simulation(config, seed=8).run(max_flips=5)
        assert result.n_flips == 5
        assert not result.terminated


class TestSnapshots:
    def test_final_snapshot_always_present(self, config):
        result = Simulation(config, seed=9).run()
        assert len(result.snapshots) >= 1
        assert np.array_equal(result.snapshots[-1].spins, result.final_spins)

    def test_requested_snapshots_collected(self, config):
        result = Simulation(config, seed=10).run(snapshot_flip_counts=[0, 10, 50])
        flips = [snapshot.n_flips for snapshot in result.snapshots]
        assert flips[0] == 0
        assert any(f >= 10 for f in flips[1:])
        # Snapshots are ordered in time.
        times = [snapshot.time for snapshot in result.snapshots]
        assert times == sorted(times)

    def test_snapshot_at_zero_equals_initial(self, config):
        result = Simulation(config, seed=11).run(snapshot_flip_counts=[0])
        assert np.array_equal(result.snapshots[0].spins, result.initial_spins)


class TestTrajectoryAndHelper:
    def test_trajectory_recorded_when_requested(self, config):
        result = Simulation(config, seed=12).run(record_trajectory=True, record_every=20)
        assert result.trajectory is not None
        assert len(result.trajectory) >= 2

    def test_trajectory_absent_by_default(self, config):
        assert Simulation(config, seed=13).run().trajectory is None

    def test_simulate_helper(self, config):
        result = simulate(config, seed=14)
        assert result.terminated

    def test_simulate_increases_homogeneity(self, config):
        from repro.analysis.segregation import local_homogeneity

        result = simulate(config, seed=15)
        before = local_homogeneity(result.initial_spins, config.horizon)
        after = local_homogeneity(result.final_spins, config.horizon)
        assert after > before
