"""Tests for experiment result persistence (JSON tables and manifests)."""

import json

import pytest

from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.experiments.io import (
    config_from_dict,
    config_to_dict,
    load_manifest,
    load_table,
    save_manifest,
    save_table,
)
from repro.experiments.results import ResultTable
from repro.types import FlipRule, SchedulerKind


@pytest.fixture
def table() -> ResultTable:
    table = ResultTable()
    table.add_row(tau=0.45, replicate=0, size=12.5, terminated=True)
    table.add_row(tau=0.45, replicate=1, size=14.0, terminated=False)
    return table


class TestTableRoundtrip:
    def test_save_and_load(self, table, tmp_path):
        path = save_table(table, tmp_path / "rows.json")
        loaded = load_table(path)
        assert len(loaded) == 2
        assert loaded[0]["size"] == 12.5
        assert loaded[1]["terminated"] is False

    def test_types_preserved(self, table, tmp_path):
        loaded = load_table(save_table(table, tmp_path / "rows.json"))
        assert isinstance(loaded[0]["replicate"], int)
        assert isinstance(loaded[0]["size"], float)
        assert isinstance(loaded[0]["terminated"], bool)

    def test_numpy_scalars_serialised(self, tmp_path):
        import numpy as np

        table = ResultTable()
        table.add_row(value=np.float64(1.5), count=np.int64(3))
        loaded = load_table(save_table(table, tmp_path / "np.json"))
        assert loaded[0]["value"] == 1.5
        assert loaded[0]["count"] == 3

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            save_table(ResultTable(), tmp_path / "empty.json")

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ExperimentError):
            load_table(path)


class TestConfigRoundtrip:
    def test_roundtrip_preserves_parameters(self):
        config = ModelConfig.square(
            side=30,
            horizon=2,
            tau=0.45,
            density=0.6,
            scheduler=SchedulerKind.DISCRETE,
            flip_rule=FlipRule.ALWAYS,
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_dict_is_json_serialisable(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        json.dumps(config_to_dict(config))


class TestManifest:
    def test_manifest_roundtrip(self, table, tmp_path):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        path = save_manifest(
            tmp_path / "manifest.json",
            table,
            config=config,
            name="unit-test",
            seed=7,
            notes="round trip",
        )
        manifest = load_manifest(path)
        assert manifest["name"] == "unit-test"
        assert manifest["seed"] == 7
        assert manifest["config"] == config
        assert len(manifest["table"]) == 2
        assert manifest["library_version"]

    def test_manifest_without_config(self, table, tmp_path):
        path = save_manifest(tmp_path / "noconfig.json", table)
        manifest = load_manifest(path)
        assert manifest["config"] is None

    def test_manifest_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ExperimentError):
            load_manifest(path)

    def test_manifest_rejects_empty_table(self, tmp_path):
        with pytest.raises(ExperimentError):
            save_manifest(tmp_path / "empty.json", ResultTable())
