"""Tests for the first-passage percolation substrate (Kesten's theorem)."""

import numpy as np
import pytest

from repro.errors import PercolationError
from repro.percolation.first_passage import (
    FirstPassagePercolation,
    exponential_passage_times,
    study_passage_times,
    time_constant_curve,
    uniform_passage_times,
)


class TestConstruction:
    def test_sample_shape(self):
        fpp = FirstPassagePercolation.sample(5, 8, seed=0)
        assert fpp.shape == (5, 8)
        assert np.all(fpp.passage_times >= 0)

    def test_negative_times_rejected(self):
        with pytest.raises(PercolationError):
            FirstPassagePercolation(np.array([[1.0, -0.5], [0.2, 0.3]]))

    def test_nan_times_rejected(self):
        with pytest.raises(PercolationError):
            FirstPassagePercolation(np.array([[1.0, np.nan], [0.2, 0.3]]))

    def test_non_2d_rejected(self):
        with pytest.raises(PercolationError):
            FirstPassagePercolation(np.ones(4))

    def test_samplers_validate_parameters(self):
        with pytest.raises(PercolationError):
            exponential_passage_times(0.0)
        with pytest.raises(PercolationError):
            uniform_passage_times(2.0, 1.0)


class TestPassageTimes:
    def test_zero_times_give_zero_distances(self):
        fpp = FirstPassagePercolation(np.zeros((5, 5)))
        assert fpp.passage_time((0, 0), (4, 4)) == 0.0

    def test_source_has_zero_time(self):
        fpp = FirstPassagePercolation.sample(6, 6, seed=1)
        field = fpp.passage_time_field((2, 2))
        assert field[2, 2] == 0.0

    def test_uniform_unit_times_give_l1_distance(self):
        fpp = FirstPassagePercolation(np.ones((7, 7)))
        assert fpp.passage_time((0, 0), (3, 2)) == pytest.approx(5.0)
        assert fpp.passage_time((6, 6), (0, 0)) == pytest.approx(12.0)

    def test_triangle_inequality(self):
        fpp = FirstPassagePercolation.sample(8, 8, seed=2)
        a, b, c = (0, 0), (4, 4), (7, 7)
        t_ab = fpp.passage_time(a, b)
        field_b = fpp.passage_time_field(b)
        t_bc = float(field_b[c])
        t_ac = fpp.passage_time(a, c)
        assert t_ac <= t_ab + t_bc + 1e-9

    def test_field_monotone_under_smaller_times(self):
        rng = np.random.default_rng(3)
        times = rng.exponential(1.0, size=(8, 8))
        larger = FirstPassagePercolation(times)
        smaller = FirstPassagePercolation(times * 0.5)
        field_large = larger.passage_time_field((0, 0))
        field_small = smaller.passage_time_field((0, 0))
        assert np.all(field_small <= field_large + 1e-9)

    def test_path_cheaper_than_direct_route_cost(self):
        # The optimal passage time never exceeds the cost of the straight path.
        fpp = FirstPassagePercolation.sample(3, 20, seed=4)
        direct_cost = fpp.passage_times[1, 1:].sum()
        assert fpp.passage_time((1, 0), (1, 19)) <= direct_cost + 1e-9


class TestStudies:
    def test_study_sample_count(self):
        study = study_passage_times(k=6, n_trials=25, seed=0)
        assert study.samples.shape == (25,)
        assert study.k == 6

    def test_time_constant_estimate_positive(self):
        study = study_passage_times(k=10, n_trials=30, seed=1)
        assert 0.1 < study.time_constant_estimate < 1.5

    def test_mean_passage_time_grows_with_k(self):
        short = study_passage_times(k=5, n_trials=30, seed=2)
        long = study_passage_times(k=20, n_trials=30, seed=2)
        assert long.samples.mean() > short.samples.mean()

    def test_kesten_concentration_fluctuation_bounded(self):
        # std(T_k)/sqrt(k) should not blow up with k.
        small = study_passage_times(k=8, n_trials=60, seed=3)
        large = study_passage_times(k=32, n_trials=60, seed=3)
        assert large.normalized_fluctuation < 3 * max(small.normalized_fluctuation, 0.1)

    def test_concentration_probability_decreases_in_x(self):
        study = study_passage_times(k=16, n_trials=80, seed=4)
        assert study.concentration_probability(0.5) >= study.concentration_probability(2.0)

    def test_time_constant_curve_sorted(self):
        studies = time_constant_curve([12, 4, 8], n_trials=10, seed=5)
        assert [s.k for s in studies] == [4, 8, 12]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PercolationError):
            study_passage_times(k=0, n_trials=5)
        with pytest.raises(PercolationError):
            study_passage_times(k=5, n_trials=0)
