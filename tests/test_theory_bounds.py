"""Tests for the probability bounds of Lemmas 19, 20 and 22."""

import numpy as np
import pytest
from scipy import stats

from repro.core.config import ModelConfig
from repro.errors import ConfigurationError
from repro.theory.bounds import (
    exact_radical_region_probability,
    exact_unhappy_probability,
    firewall_radius_scale,
    radical_in_neighborhood_exponent,
    radical_region_probability_exponent,
    unhappy_probability_bounds,
    unhappy_probability_exponent,
)


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=40, horizon=2, tau=0.45)


class TestExactUnhappyProbability:
    def test_matches_direct_binomial(self, config):
        n = config.neighborhood_agents
        threshold = config.happiness_threshold
        expected = stats.binom.cdf(threshold - 2, n - 1, 0.5)
        assert exact_unhappy_probability(config) == pytest.approx(expected)

    def test_zero_for_zero_tau(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.0)
        assert exact_unhappy_probability(config) == 0.0

    def test_increases_with_tau(self):
        values = [
            exact_unhappy_probability(ModelConfig.square(40, 2, tau))
            for tau in (0.3, 0.4, 0.5)
        ]
        assert values == sorted(values)

    def test_decreases_with_horizon_for_fixed_tau_below_half(self):
        values = [
            exact_unhappy_probability(ModelConfig.square(60, w, 0.42))
            for w in (2, 3, 4)
        ]
        assert values[0] > values[1] > values[2]

    def test_asymmetric_density_accounted(self):
        balanced = exact_unhappy_probability(ModelConfig.square(40, 2, 0.45, density=0.5))
        skewed = exact_unhappy_probability(ModelConfig.square(40, 2, 0.45, density=0.9))
        # With p = 0.9 most agents are +1 and happy; minority -1 agents are
        # usually unhappy but they are few, so overall p_u differs from 1/2 case.
        assert skewed != pytest.approx(balanced)


class TestLemma19Bounds:
    def test_bracket_contains_exact_value(self, config):
        lower, upper = unhappy_probability_bounds(config)
        exact = exact_unhappy_probability(config)
        assert lower <= exact <= upper

    def test_bracket_for_several_horizons(self):
        for horizon in (2, 3, 4, 5):
            config = ModelConfig.square(side=80, horizon=horizon, tau=0.45)
            lower, upper = unhappy_probability_bounds(config)
            exact = exact_unhappy_probability(config)
            assert lower <= exact <= upper, f"failed at horizon {horizon}"

    def test_requires_half_density(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.45, density=0.6)
        with pytest.raises(ConfigurationError):
            unhappy_probability_bounds(config)

    def test_requires_tau_prime_in_range(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.05)
        with pytest.raises(ConfigurationError):
            unhappy_probability_bounds(config)

    def test_exponent_matches_complement_entropy(self):
        from repro.theory.entropy import binary_entropy_complement

        assert unhappy_probability_exponent(0.45) == pytest.approx(
            binary_entropy_complement(0.45)
        )

    def test_exponent_symmetric(self):
        assert unhappy_probability_exponent(0.6) == pytest.approx(
            unhappy_probability_exponent(0.4)
        )


class TestRadicalRegionProbabilities:
    def test_exact_probability_in_unit_interval(self, config):
        p = exact_radical_region_probability(config, epsilon_prime=0.5)
        assert 0.0 < p < 1.0

    def test_probability_increases_with_tau(self):
        # A larger intolerance allows more minority agents inside a radical
        # region, so the region event becomes more likely.
        values = [
            exact_radical_region_probability(
                ModelConfig.square(80, 3, tau), epsilon_prime=0.5
            )
            for tau in (0.38, 0.42, 0.46)
        ]
        assert values[0] < values[1] < values[2]

    def test_probability_rarer_than_single_unhappy_agent(self):
        # Lemma 20's event is exponentially rarer than Lemma 19's.
        config = ModelConfig.square(80, 4, 0.45)
        assert exact_radical_region_probability(
            config, epsilon_prime=0.5
        ) < exact_unhappy_probability(config)

    def test_default_epsilon_prime_used(self, config):
        assert exact_radical_region_probability(config) >= 0.0

    def test_exponent_larger_than_unhappy_exponent(self):
        # A radical region is a rarer event than a single unhappy agent.
        assert radical_region_probability_exponent(0.45) > unhappy_probability_exponent(0.45)

    def test_lemma22_exponent_smaller_than_lemma20(self):
        # Lemma 22 amortises the radical-region cost over a large neighbourhood:
        # (2e+e^2) < (1+e)^2.
        assert radical_in_neighborhood_exponent(0.45) < radical_region_probability_exponent(0.45)

    def test_exponents_positive(self):
        for tau in (0.36, 0.42, 0.48):
            assert radical_region_probability_exponent(tau) > 0
            assert radical_in_neighborhood_exponent(tau) > 0


class TestFirewallRadiusScale:
    def test_grows_with_n(self):
        assert firewall_radius_scale(0.45, 81) > firewall_radius_scale(0.45, 25)

    def test_grows_as_tau_moves_away_from_half(self):
        assert firewall_radius_scale(0.42, 49) > firewall_radius_scale(0.48, 49)

    def test_at_least_one(self):
        assert firewall_radius_scale(0.499, 9) >= 1.0
