"""Tests for the shared value types."""

import pytest

from repro.types import AgentType, DynamicsKind, FlipRule, Regime, SchedulerKind, Site


class TestAgentType:
    def test_values(self):
        assert int(AgentType.PLUS) == 1
        assert int(AgentType.MINUS) == -1

    def test_opposite(self):
        assert AgentType.PLUS.opposite is AgentType.MINUS
        assert AgentType.MINUS.opposite is AgentType.PLUS

    def test_opposite_is_involution(self):
        for agent_type in AgentType:
            assert agent_type.opposite.opposite is agent_type

    def test_constructible_from_int(self):
        assert AgentType(1) is AgentType.PLUS
        assert AgentType(-1) is AgentType.MINUS

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            AgentType(0)


class TestEnums:
    def test_dynamics_kinds(self):
        assert DynamicsKind.GLAUBER.value == "glauber"
        assert DynamicsKind.KAWASAKI.value == "kawasaki"

    def test_scheduler_kinds(self):
        assert {kind.value for kind in SchedulerKind} == {"continuous", "discrete"}

    def test_flip_rules(self):
        assert {rule.value for rule in FlipRule} == {"only_if_happy", "always"}

    def test_regimes_cover_figure2(self):
        values = {regime.value for regime in Regime}
        assert "static" in values
        assert "exponential_monochromatic" in values
        assert "exponential_almost_monochromatic" in values
        assert "unknown" in values
        assert "balanced" in values


class TestSite:
    def test_as_tuple(self):
        assert Site(3, 4).as_tuple() == (3, 4)

    def test_frozen(self):
        site = Site(1, 2)
        with pytest.raises(AttributeError):
            site.row = 5

    def test_equality(self):
        assert Site(1, 2) == Site(1, 2)
        assert Site(1, 2) != Site(2, 1)
