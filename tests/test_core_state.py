"""Tests for the incremental model state (happiness bookkeeping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.initializer import random_configuration, uniform_configuration
from repro.core.dynamics import run_to_completion
from repro.core.state import ModelState, make_state
from repro.errors import ConfigurationError, StateError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=20, horizon=2, tau=0.45)


@pytest.fixture
def state(config) -> ModelState:
    return ModelState(config, random_configuration(config, seed=7))


class TestConstruction:
    def test_shape_mismatch_rejected(self, config):
        wrong = TorusGrid.filled(10, 10, AgentType.PLUS)
        with pytest.raises(ConfigurationError):
            ModelState(config, wrong)

    def test_make_state_random_by_default(self, config):
        state = make_state(config, seed=1)
        assert state.grid.shape == config.shape

    def test_monochromatic_grid_everyone_happy(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.PLUS))
        assert state.n_unhappy == 0
        assert state.n_flippable == 0
        assert state.is_terminated()


class TestCountsAndHappiness:
    def test_plus_counts_match_grid_method(self, state, config):
        expected = state.grid.plus_neighborhood_counts(config.horizon)
        assert np.array_equal(state.plus_counts(), expected)

    def test_same_type_counts_match_grid_method(self, state, config):
        expected = state.grid.same_type_neighborhood_counts(config.horizon)
        assert np.array_equal(state.same_type_counts(), expected)

    def test_happy_iff_threshold_met(self, state, config):
        same = state.same_type_counts()
        happy = state.happy_mask()
        assert np.array_equal(happy, same >= config.happiness_threshold)

    def test_unhappy_mask_complement(self, state):
        assert np.array_equal(state.unhappy_mask(), ~state.happy_mask())

    def test_samplers_match_masks(self, state):
        unhappy_flat = np.flatnonzero(state.unhappy_mask().ravel())
        flippable_flat = np.flatnonzero(state.flippable_mask().ravel())
        assert state.unhappy_sampler.to_array().tolist() == unhappy_flat.tolist()
        assert state.flippable_sampler.to_array().tolist() == flippable_flat.tolist()

    def test_same_type_fraction_is_s_of_u(self, state, config):
        row, col = 3, 5
        assert state.same_type_fraction(row, col) == pytest.approx(
            state.same_type_count(row, col) / config.neighborhood_agents
        )

    def test_flippable_subset_of_unhappy(self, state):
        assert np.all(~state.flippable_mask() | state.unhappy_mask())

    def test_flippable_equals_unhappy_below_half(self, state, config):
        # For tau < 1/2 every unhappy agent becomes happy by flipping.
        assert config.tau < 0.5
        assert np.array_equal(state.flippable_mask(), state.unhappy_mask())

    def test_flippable_strict_subset_above_half(self):
        config = ModelConfig.square(side=20, horizon=2, tau=0.7)
        state = ModelState(config, random_configuration(config, seed=3))
        assert state.n_flippable <= state.n_unhappy

    def test_would_be_happy_after_flip_matches_definition(self, state, config):
        n = config.neighborhood_agents
        threshold = config.happiness_threshold
        for site in [(0, 0), (5, 5), (12, 19)]:
            same = state.same_type_count(*site)
            expected = (n - same + 1) >= threshold
            assert state.would_be_happy_after_flip(*site) == expected


class TestApplyFlip:
    def test_flip_changes_spin(self, state):
        before = state.grid.get(4, 4)
        new_value = state.apply_flip(4, 4)
        assert new_value == -before
        assert state.grid.get(4, 4) == -before

    def test_incremental_matches_full_recompute(self, state, config):
        rng = np.random.default_rng(0)
        for _ in range(30):
            row = int(rng.integers(0, config.n_rows))
            col = int(rng.integers(0, config.n_cols))
            state.apply_flip(row, col)
        reference = ModelState(config, state.grid.copy())
        assert np.array_equal(state.plus_counts(), reference.plus_counts())
        assert np.array_equal(state.happy_mask(), reference.happy_mask())
        assert np.array_equal(state.flippable_mask(), reference.flippable_mask())
        assert state.n_unhappy == reference.n_unhappy
        assert state.n_flippable == reference.n_flippable

    def test_flip_near_boundary_wraps(self, state, config):
        state.apply_flip(0, 0)
        reference = ModelState(config, state.grid.copy())
        assert np.array_equal(state.plus_counts(), reference.plus_counts())

    def test_double_flip_restores_state(self, state):
        before_counts = state.plus_counts()
        before_happy = state.happy_mask()
        state.apply_flip(7, 7)
        state.apply_flip(7, 7)
        assert np.array_equal(state.plus_counts(), before_counts)
        assert np.array_equal(state.happy_mask(), before_happy)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_incremental_invariant_under_arbitrary_flips(self, seed, flips):
        config = ModelConfig.square(side=20, horizon=2, tau=0.45)
        state = ModelState(config, random_configuration(config, seed=seed))
        for row, col in flips:
            state.apply_flip(row, col)
        reference = ModelState(config, state.grid.copy())
        assert np.array_equal(state.flippable_mask(), reference.flippable_mask())
        assert state.n_unhappy == reference.n_unhappy


class TestOtherOperations:
    def test_apply_spin_array(self, state, config):
        new_spins = uniform_configuration(config, AgentType.MINUS).spins
        state.apply_spin_array(new_spins)
        assert state.n_unhappy == 0
        assert state.grid.count(AgentType.PLUS) == 0

    def test_apply_spin_array_shape_checked(self, state):
        with pytest.raises(ConfigurationError):
            state.apply_spin_array(np.ones((5, 5), dtype=np.int8))

    def test_energy_matches_lyapunov(self, state, config):
        from repro.core.lyapunov import lyapunov_energy

        assert state.energy() == lyapunov_energy(state.grid.spins, config.horizon)

    def test_sample_unhappy_from_empty_raises(self, config):
        state = ModelState(config, uniform_configuration(config, AgentType.PLUS))
        with pytest.raises(StateError):
            state.sample_unhappy(np.random.default_rng(0))
        with pytest.raises(StateError):
            state.sample_flippable(np.random.default_rng(0))

    def test_sample_unhappy_returns_unhappy_site(self, state):
        rng = np.random.default_rng(0)
        for _ in range(10):
            site = state.sample_unhappy(rng)
            assert not state.is_happy(*site)

    def test_snapshot_is_copy(self, state):
        snap = state.snapshot()
        state.apply_flip(0, 0)
        assert snap[0, 0] == -state.grid.get(0, 0)


class TestIncrementalCounters:
    """energy()/magnetization() are O(1) counters kept exact by apply_flip."""

    def test_energy_matches_full_recompute_after_long_flip_sequence(self, config):
        state = make_state(config, seed=3)
        rng = np.random.default_rng(11)
        for _ in range(400):
            row = int(rng.integers(0, config.n_rows))
            col = int(rng.integers(0, config.n_cols))
            state.apply_flip(row, col)
        assert state.energy() == int(state._same_counts_full().sum())
        assert state.magnetization() == state.grid.magnetization()

    def test_energy_matches_full_recompute_after_dynamics_run(self, config):
        state = make_state(config, seed=5)
        run_to_completion(state, seed=7)
        assert state.energy() == int(state._same_counts_full().sum())
        assert state.magnetization() == state.grid.magnetization()

    def test_counters_reset_by_apply_spin_array(self, config, rng):
        state = make_state(config, seed=1)
        state.apply_flip(0, 0)
        spins = np.where(rng.random(config.shape) < 0.5, 1, -1).astype(np.int8)
        state.apply_spin_array(spins)
        assert state.energy() == int(state._same_counts_full().sum())
        assert state.magnetization() == state.grid.magnetization()

    def test_magnetization_bitwise_equals_grid_magnetization(self, config):
        state = make_state(config, seed=9)
        for flat in range(0, config.n_sites, 7):
            state.apply_flip(*state.site_of(flat))
            assert state.magnetization() == state.grid.magnetization()

    def test_energy_read_does_not_recompute(self, config, monkeypatch):
        state = make_state(config, seed=2)
        calls = {"n": 0}
        original = ModelState._same_counts_full

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ModelState, "_same_counts_full", counting)
        state.apply_flip(1, 1)
        energy = state.energy()
        magnetization = state.magnetization()
        assert calls["n"] == 0
        assert energy == int(original(state).sum())
        assert magnetization == state.grid.magnetization()
