"""Tests for the two-sided comfort and per-type intolerance variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import (
    checkerboard_configuration,
    random_configuration,
    uniform_configuration,
)
from repro.core.state import ModelState
from repro.core.variants import AsymmetricModelState, TwoSidedModelState
from repro.errors import ConfigurationError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=24, horizon=2, tau=0.45)


class TestTwoSidedState:
    def test_reduces_to_base_model_when_upper_bound_is_one(self, config):
        grid = random_configuration(config, seed=0)
        base = ModelState(config, grid.copy())
        two_sided = TwoSidedModelState(config, tau_high=1.0, grid=grid.copy())
        assert np.array_equal(base.happy_mask(), two_sided.happy_mask())
        assert np.array_equal(base.flippable_mask(), two_sided.flippable_mask())

    def test_uniform_grid_is_unhappy_when_majority_uncomfortable(self, config):
        # Everyone has 100% same-type neighbours, above the comfort band.
        state = TwoSidedModelState(
            config, tau_high=0.9, grid=uniform_configuration(config, AgentType.PLUS)
        )
        assert state.n_unhappy == config.n_sites
        # Flipping makes the agent a tiny minority — still outside the band.
        assert state.n_flippable == 0
        assert state.is_terminated()

    def test_checkerboard_inside_band_is_happy(self, config):
        # Checkerboard same-type fraction is 13/25 = 0.52 for horizon 2.
        state = TwoSidedModelState(
            config, tau_high=0.8, grid=checkerboard_configuration(config)
        )
        assert state.n_unhappy == 0

    def test_invalid_upper_bound_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TwoSidedModelState(config, tau_high=0.3)
        with pytest.raises(ConfigurationError):
            TwoSidedModelState(config, tau_high=1.2)

    def test_incremental_updates_match_recompute(self, config):
        state = TwoSidedModelState(
            config, tau_high=0.85, grid=random_configuration(config, seed=1)
        )
        rng = np.random.default_rng(2)
        for _ in range(25):
            row = int(rng.integers(0, config.n_rows))
            col = int(rng.integers(0, config.n_cols))
            state.apply_flip(row, col)
        reference = TwoSidedModelState(config, tau_high=0.85, grid=state.grid.copy())
        assert np.array_equal(state.happy_mask(), reference.happy_mask())
        assert np.array_equal(state.flippable_mask(), reference.flippable_mask())

    def test_flips_land_inside_comfort_band(self, config):
        state = TwoSidedModelState(
            config, tau_high=0.85, grid=random_configuration(config, seed=3)
        )
        dynamics = GlauberDynamics(state, seed=4)
        checked = 0
        for _ in range(200):
            event = dynamics.step()
            if event is None:
                if dynamics.is_terminated:
                    break
                continue
            fraction = state.same_type_fraction(event.site.row, event.site.col)
            assert config.tau <= fraction + 1e-9
            assert fraction <= state.tau_high + 1e-9
            checked += 1
        assert checked > 0

    def test_run_with_budget_performs_flips(self, config):
        # The two-sided variant has no Lyapunov function: the unhappy count
        # may rise as segregated patches overshoot the comfort cap, so the run
        # is only checked for activity and for never exceeding its budget.
        grid = random_configuration(config, seed=5)
        state = TwoSidedModelState(config, tau_high=0.85, grid=grid)
        result = GlauberDynamics(state, seed=6).run(max_steps=5 * config.n_sites)
        assert result.n_flips > 0
        assert result.n_steps <= 5 * config.n_sites

    def test_less_segregated_than_one_sided_model(self, config):
        from repro.analysis.segregation import local_homogeneity

        grid = random_configuration(config, seed=7)
        one_sided = ModelState(config, grid.copy())
        GlauberDynamics(one_sided, seed=8).run()
        two_sided = TwoSidedModelState(config, tau_high=0.8, grid=grid.copy())
        GlauberDynamics(two_sided, seed=8).run(max_steps=10 * config.n_sites)
        assert local_homogeneity(two_sided.grid.spins, config.horizon) <= local_homogeneity(
            one_sided.grid.spins, config.horizon
        )


class TestAsymmetricState:
    def test_equal_intolerances_reduce_to_base_model(self, config):
        grid = random_configuration(config, seed=10)
        base = ModelState(config, grid.copy())
        asymmetric = AsymmetricModelState(config, tau_minus=config.tau, grid=grid.copy())
        assert np.array_equal(base.happy_mask(), asymmetric.happy_mask())
        assert np.array_equal(base.flippable_mask(), asymmetric.flippable_mask())

    def test_tolerant_minus_agents_never_unhappy(self, config):
        # tau_minus = 0 makes every -1 agent happy regardless of neighbours.
        state = AsymmetricModelState(
            config, tau_minus=0.0, grid=random_configuration(config, seed=11)
        )
        unhappy = state.unhappy_mask()
        minus = state.grid.spins == -1
        assert not np.any(unhappy & minus)

    def test_intolerant_minus_agents_more_unhappy(self, config):
        grid = random_configuration(config, seed=12)
        lenient = AsymmetricModelState(config, tau_minus=0.3, grid=grid.copy())
        strict = AsymmetricModelState(config, tau_minus=0.6, grid=grid.copy())
        assert strict.n_unhappy > lenient.n_unhappy

    def test_incremental_updates_match_recompute(self, config):
        state = AsymmetricModelState(
            config, tau_minus=0.35, grid=random_configuration(config, seed=13)
        )
        rng = np.random.default_rng(14)
        for _ in range(25):
            state.apply_flip(int(rng.integers(0, 24)), int(rng.integers(0, 24)))
        reference = AsymmetricModelState(config, tau_minus=0.35, grid=state.grid.copy())
        assert np.array_equal(state.happy_mask(), reference.happy_mask())
        assert np.array_equal(state.flippable_mask(), reference.flippable_mask())

    def test_dynamics_terminates(self, config):
        state = AsymmetricModelState(
            config, tau_minus=0.40, grid=random_configuration(config, seed=15)
        )
        result = GlauberDynamics(state, seed=16).run(max_steps=50 * config.n_sites)
        assert result.n_flips > 0
        assert state.n_flippable == 0 or result.terminated

    def test_flips_respect_new_type_threshold(self, config):
        state = AsymmetricModelState(
            config, tau_minus=0.30, grid=random_configuration(config, seed=17)
        )
        dynamics = GlauberDynamics(state, seed=18)
        for _ in range(150):
            event = dynamics.step()
            if event is None:
                if dynamics.is_terminated:
                    break
                continue
            site = (event.site.row, event.site.col)
            threshold = (
                state.config.happiness_threshold
                if int(event.new_type) == 1
                else state.minus_threshold
            )
            assert state.same_type_count(*site) >= threshold

    def test_static_expected_helper(self, config):
        balanced = AsymmetricModelState(
            config, tau_minus=config.tau, grid=uniform_configuration(config, AgentType.PLUS)
        )
        assert not balanced.static_expected()
        low_config = ModelConfig.square(side=24, horizon=2, tau=0.2)
        static = AsymmetricModelState(
            low_config, tau_minus=0.2, grid=uniform_configuration(low_config, AgentType.PLUS)
        )
        assert static.static_expected()

    def test_invalid_tau_minus_rejected(self, config):
        with pytest.raises(ConfigurationError):
            AsymmetricModelState(config, tau_minus=1.5)


class TestDegenerateParameterEquivalence:
    """Property tests: degenerate variant parameters recover the base model."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        tau=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_equal_intolerances_trajectory_matches_base_bit_for_bit(self, seed, tau):
        """``tau_plus == tau_minus`` must reproduce the base dynamics exactly:
        same RNG draws, same flips in the same order, same final grid."""
        config = ModelConfig.square(side=12, horizon=1, tau=tau)
        grid = random_configuration(config, seed=seed)
        budget = 4 * config.n_sites

        base_state = ModelState(config, grid.copy())
        base_result = GlauberDynamics(base_state, seed=seed).run(
            max_steps=budget, record_trajectory=True, record_every=1
        )
        asym_state = AsymmetricModelState(config, tau_minus=config.tau, grid=grid.copy())
        asym_result = GlauberDynamics(asym_state, seed=seed).run(
            max_steps=budget, record_trajectory=True, record_every=1
        )

        assert np.array_equal(base_state.grid.spins, asym_state.grid.spins)
        assert base_result.n_flips == asym_result.n_flips
        assert base_result.n_steps == asym_result.n_steps
        assert base_result.terminated == asym_result.terminated
        assert base_result.final_time == asym_result.final_time
        assert base_result.trajectory.energy == asym_result.trajectory.energy
        assert base_result.trajectory.times == asym_result.trajectory.times
        assert base_result.trajectory.n_unhappy == asym_result.trajectory.n_unhappy

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_tau_high_one_trajectory_matches_base_bit_for_bit(self, seed):
        """``tau_high = 1`` removes the upper bound, recovering the base rule."""
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        grid = random_configuration(config, seed=seed)

        base_state = ModelState(config, grid.copy())
        base_result = GlauberDynamics(base_state, seed=seed).run()
        two_state = TwoSidedModelState(config, tau_high=1.0, grid=grid.copy())
        two_result = GlauberDynamics(two_state, seed=seed).run(
            max_steps=20 * config.n_sites
        )

        assert np.array_equal(base_state.grid.spins, two_state.grid.spins)
        assert base_result.n_flips == two_result.n_flips
        assert base_result.final_time == two_result.final_time
