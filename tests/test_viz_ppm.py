"""Tests for PPM/PGM image export."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.viz.ppm import (
    FIGURE1_COLORS,
    spins_to_rgb,
    write_configuration_image,
    write_pgm,
    write_ppm,
)


class TestSpinsToRgb:
    def test_happy_colors(self):
        spins = np.array([[1, -1]], dtype=np.int8)
        rgb = spins_to_rgb(spins)
        assert tuple(rgb[0, 0]) == FIGURE1_COLORS[("plus", "happy")]
        assert tuple(rgb[0, 1]) == FIGURE1_COLORS[("minus", "happy")]

    def test_unhappy_colors(self):
        spins = np.array([[1, -1]], dtype=np.int8)
        happy = np.array([[False, False]])
        rgb = spins_to_rgb(spins, happy)
        assert tuple(rgb[0, 0]) == FIGURE1_COLORS[("plus", "unhappy")]
        assert tuple(rgb[0, 1]) == FIGURE1_COLORS[("minus", "unhappy")]

    def test_shape(self):
        rgb = spins_to_rgb(np.ones((5, 7), dtype=np.int8))
        assert rgb.shape == (5, 7, 3)
        assert rgb.dtype == np.uint8

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            spins_to_rgb(np.ones((2, 2), dtype=np.int8), np.ones((3, 3), dtype=bool))


class TestWritePpm:
    def test_header_and_size(self, tmp_path):
        rgb = np.zeros((4, 6, 3), dtype=np.uint8)
        path = write_ppm(rgb, tmp_path / "image.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_invalid_shape_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_ppm(np.zeros((4, 6), dtype=np.uint8), tmp_path / "bad.ppm")

    def test_configuration_helper(self, tmp_path):
        spins = np.ones((8, 8), dtype=np.int8)
        path = write_configuration_image(spins, tmp_path / "config.ppm")
        assert path.exists()
        assert path.read_bytes().startswith(b"P6\n8 8\n255\n")


class TestWritePgm:
    def test_header_and_rescaling(self, tmp_path):
        values = np.array([[0.0, 1.0], [2.0, 4.0]])
        path = write_pgm(values, tmp_path / "field.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n2 2\n255\n")
        pixels = data[len(b"P5\n2 2\n255\n"):]
        assert pixels[0] == 0
        assert pixels[-1] == 255

    def test_constant_field_all_zero(self, tmp_path):
        path = write_pgm(np.ones((3, 3)), tmp_path / "flat.pgm")
        pixels = path.read_bytes()[len(b"P5\n3 3\n255\n"):]
        assert set(pixels) == {0}

    def test_invalid_shape_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_pgm(np.ones(5), tmp_path / "bad.pgm")
