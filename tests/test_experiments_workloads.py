"""Tests for workload construction helpers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.workloads import (
    bench_quick_mode,
    default_tau_grid,
    density_ladder,
    figure1_config,
    full_scale_requested,
    grid_side_for_horizon,
    scaling_horizons,
    sweep_config,
    theorem1_taus,
    theorem2_taus,
)
from repro.theory.intervals import classify_regime
from repro.types import Regime


class TestGridSizing:
    def test_side_proportional_to_horizon(self):
        assert grid_side_for_horizon(2, multiples=10) == 50
        assert grid_side_for_horizon(3, multiples=10) == 70

    def test_minimum_enforced(self):
        assert grid_side_for_horizon(1, multiples=2, minimum=24) == 24

    def test_invalid_horizon(self):
        with pytest.raises(ExperimentError):
            grid_side_for_horizon(0)

    def test_sweep_config_fits_horizon(self):
        config = sweep_config(horizon=3, tau=0.45)
        assert config.horizon == 3
        assert config.n_rows >= 7 * 3


class TestFigure1:
    def test_scaled_config_keeps_tau(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        config = figure1_config()
        assert config.tau == pytest.approx(0.42)
        assert config.n_rows < 1000
        assert config.n_rows / config.horizon == pytest.approx(1000 / 10 * 0.4, rel=0.6)

    def test_full_scale_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale_requested()
        config = figure1_config()
        assert config.shape == (1000, 1000)
        assert config.neighborhood_agents == 441

    def test_full_scale_disabled_values(self, monkeypatch):
        for value in ("", "0", "false"):
            monkeypatch.setenv("REPRO_FULL_SCALE", value)
            assert not full_scale_requested()


class TestBenchQuickMode:
    def test_enabled_by_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert bench_quick_mode()

    def test_disabled_by_default_and_falsy_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        assert not bench_quick_mode()
        for value in ("", "0", "false", "False"):
            monkeypatch.setenv("REPRO_BENCH_QUICK", value)
            assert not bench_quick_mode()

    def test_quick_mode_caps_throughput_benchmark_flips(self, monkeypatch):
        """The throughput benchmark must bound its run length in quick mode
        (same grid, same replica count — only the flip budget shrinks)."""
        import importlib.util
        from pathlib import Path

        bench_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_ensemble_throughput.py"
        )
        spec = importlib.util.spec_from_file_location("bench_ensemble", bench_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        quick = module.throughput_parameters()
        monkeypatch.delenv("REPRO_BENCH_QUICK")
        full = module.throughput_parameters()
        assert quick["max_flips"] is not None and quick["max_flips"] <= 5000
        assert full["max_flips"] is None
        assert quick["side"] == full["side"] == 128
        assert quick["n_replicas"] == full["n_replicas"] == 8


class TestParameterGrids:
    def test_default_tau_grid_spans_regimes(self):
        taus = default_tau_grid()
        regimes = {classify_regime(tau) for tau in taus}
        assert Regime.EXPONENTIAL_MONOCHROMATIC in regimes
        assert Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC in regimes

    def test_default_tau_grid_symmetricish(self):
        taus = default_tau_grid()
        assert any(tau < 0.5 for tau in taus)
        assert any(tau > 0.5 for tau in taus)

    def test_default_tau_grid_size_control(self):
        assert len(default_tau_grid(n_points=6)) <= 12
        with pytest.raises(ExperimentError):
            default_tau_grid(n_points=2)

    def test_theorem_taus_in_right_intervals(self):
        assert all(
            classify_regime(tau) is Regime.EXPONENTIAL_MONOCHROMATIC
            for tau in theorem1_taus()
        )
        assert all(
            classify_regime(tau) is Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC
            for tau in theorem2_taus()
        )

    def test_scaling_horizons(self):
        assert scaling_horizons(4) == [1, 2, 3, 4]
        with pytest.raises(ExperimentError):
            scaling_horizons(1)

    def test_density_ladder_default_and_validation(self):
        ladder = density_ladder()
        assert ladder[0] == 0.5
        assert ladder == sorted(ladder)
        with pytest.raises(ExperimentError):
            density_ladder([0.0, 0.5])
