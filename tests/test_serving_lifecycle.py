"""Lifecycle tests: backpressure gate, drain state machine, live refresh.

The refresh tests pin the snapshot-atomicity contract: a request resolves
entirely against one store snapshot (never a blend of two), a refreshed
snapshot is bitwise-identical to a cold open of the same directory, and a
store torn mid-append keeps serving its last good snapshot.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    ArtifactStore,
    ComputeGate,
    LRUCache,
    QueryEngine,
    QueryService,
    StoreWatcher,
    build_engine,
    store_signature,
)

from test_serving_query import grid_cells, write_store


class TestComputeGate:
    def test_admission_is_bounded_by_the_limit(self):
        gate = ComputeGate(limit=2)
        assert gate.admit() and gate.admit()
        assert not gate.admit()
        gate.release()
        assert gate.admit()

    def test_unbounded_gate_still_tracks_the_gauge(self):
        gate = ComputeGate(limit=None)
        for _ in range(100):
            assert gate.admit()
        assert gate.stats()["inflight"] == 100
        for _ in range(100):
            gate.release()
        assert gate.stats()["inflight"] == 0

    def test_rejects_invalid_limits(self):
        for bad in (0, -1, 1.5, "2"):
            with pytest.raises(ConfigurationError):
                ComputeGate(limit=bad)

    def test_release_without_admit_is_a_bug(self):
        with pytest.raises(RuntimeError):
            ComputeGate(limit=1).release()

    def test_outcome_counters_are_independent_and_exact(self):
        gate = ComputeGate(limit=1)
        gate.note_rejected()
        gate.note_degraded()
        gate.note_degraded()
        gate.note_timeout()
        stats = gate.stats()
        assert stats["rejected"] == 1
        assert stats["degraded"] == 2
        assert stats["timeouts"] == 1
        assert stats["limit"] == 1 and stats["inflight"] == 0


class TestQueryService:
    def test_requests_are_admitted_until_drain_begins(self):
        service = QueryService(engine=object())
        assert service.begin_request()
        service.end_request()
        assert service.drain(timeout=1) is True
        assert service.begin_request() is False
        stats = service.stats()
        assert stats["draining"] is True
        assert stats["requests_total"] == 1
        assert stats["inflight_requests"] == 0

    def test_alive_but_unready_while_draining(self):
        service = QueryService(engine=object())
        assert service.alive() and service.ready()
        service.drain(timeout=0)
        assert service.alive() and not service.ready()

    def test_drain_times_out_while_requests_are_in_flight(self):
        service = QueryService(engine=object())
        assert service.begin_request()
        assert service.drain(timeout=0.05) is False
        # finishing the request lets a second drain complete
        service.end_request()
        assert service.drain(timeout=1) is True

    def test_drain_wakes_when_the_last_request_ends(self):
        service = QueryService(engine=object())
        assert service.begin_request()
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(service.drain, 30)
            service.end_request()
            assert future.result(timeout=10) is True

    def test_end_request_without_begin_is_a_bug(self):
        with pytest.raises(RuntimeError):
            QueryService(engine=object()).end_request()

    def test_swap_engine_publishes_atomically(self):
        first, second = object(), object()
        service = QueryService(first)
        assert service.engine is first
        service.swap_engine(second)
        assert service.engine is second
        assert service.stats()["refreshes"] == 1


class TestStoreSignature:
    def test_missing_artifacts_fingerprint_as_none(self, tmp_path):
        signature = store_signature([tmp_path])
        assert len(signature) == 3
        assert all(entry[1:] == (None, None) for entry in signature)

    def test_appending_to_metrics_changes_the_signature(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        metrics.write_text("line one\n")
        before = store_signature([tmp_path])
        metrics.write_text("line one\nline two\n")
        assert store_signature([tmp_path]) != before

    def test_covers_every_directory_of_a_federation(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        signature = store_signature([tmp_path / "a", tmp_path / "b"])
        assert len(signature) == 6


def summary_engine(directory, generation=0, cache=None):
    """A loaded engine over a summary-only store at a given generation."""
    return build_engine(
        [ArtifactStore(directory)],
        cache=cache if cache is not None else LRUCache(16),
        generation=generation,
    ).load()


class TestStoreWatcher:
    def test_unchanged_store_never_rebuilds(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells())
        service = QueryService(summary_engine(store))
        builds = []

        def factory(generation):
            builds.append(generation)
            return summary_engine(store, generation)

        watcher = StoreWatcher(service, [store], factory, interval=60)
        assert watcher.poll_once() is False
        assert builds == []
        assert service.stats()["refreshes"] == 0

    def test_changed_summary_swaps_a_new_generation_in(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells(values=[1.0] * 4))
        cache = LRUCache(16)
        service = QueryService(summary_engine(store, cache=cache))
        watcher = StoreWatcher(
            service,
            [store],
            lambda generation: summary_engine(store, generation, cache),
            interval=60,
        )
        old = service.engine.answer("tau=0.3,rho=0.4,w=2")
        assert old["metrics"]["score"]["mean"] == 1.0

        write_store(store, grid_cells(values=[2.0] * 4))
        assert watcher.poll_once() is True
        assert watcher.generation == 1
        new = service.engine.answer("tau=0.3,rho=0.4,w=2")
        # the shared cache holds the old snapshot's entry, but the bumped
        # generation makes its key unreachable from the new snapshot
        assert new["metrics"]["score"]["mean"] == 2.0
        assert new["cached"] is False
        assert service.stats()["refreshes"] == 1

    def test_failed_rebuild_keeps_the_old_snapshot_and_retries(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells(values=[1.0] * 4))
        good_engine = summary_engine(store)
        service = QueryService(good_engine)
        attempts = []

        def flaky(generation):
            attempts.append(generation)
            if len(attempts) == 1:
                raise RuntimeError("torn read")
            return summary_engine(store, generation)

        watcher = StoreWatcher(service, [store], flaky, interval=60)
        write_store(store, grid_cells(values=[3.0] * 4))
        assert watcher.poll_once() is False
        assert service.engine is good_engine  # old snapshot still serving
        assert service.stats()["refresh_errors"] == 1
        # the signature was left stale on purpose, so the next poll retries
        assert watcher.poll_once() is True
        assert attempts == [1, 1]
        assert service.engine is not good_engine

    def test_background_thread_polls_and_stops(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells(values=[1.0] * 4))
        service = QueryService(summary_engine(store))
        watcher = StoreWatcher(
            service,
            [store],
            lambda generation: summary_engine(store, generation),
            interval=0.05,
        )
        watcher.start()
        try:
            write_store(store, grid_cells(values=[4.0] * 4))
            for _ in range(200):
                if service.stats()["refreshes"]:
                    break
                threading.Event().wait(0.05)
            answer = service.engine.answer("tau=0.3,rho=0.4,w=2")
            assert answer["metrics"]["score"]["mean"] == 4.0
        finally:
            watcher.stop()
        assert not watcher.is_alive()

    def test_rejects_non_positive_interval(self, tmp_path):
        service = QueryService(engine=object())
        with pytest.raises(ConfigurationError):
            StoreWatcher(service, [tmp_path], lambda g: None, interval=0)


class TestRefreshAtomicity:
    def test_concurrent_queries_see_exactly_one_snapshot(self, tmp_path):
        """During a swap every answer matches one snapshot, never a blend."""
        store = write_store(tmp_path / "store", grid_cells(values=[1.0] * 4))
        cache = LRUCache(64)
        service = QueryService(summary_engine(store, cache=cache))
        watcher = StoreWatcher(
            service,
            [store],
            lambda generation: summary_engine(store, generation, cache),
            interval=60,
        )
        allowed = {1.0, 2.0}
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                answer = service.engine.answer("tau=0.3,rho=0.4,w=2")
                seen = {
                    value["mean"] for value in answer["metrics"].values()
                }
                if not seen <= allowed or len(seen) != 1:
                    violations.append(answer)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for flip in range(10):
                value = 2.0 if flip % 2 == 0 else 1.0
                write_store(store, grid_cells(values=[value] * 4))
                watcher.poll_once()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert violations == []
        assert watcher.generation == 10

    def test_refreshed_snapshot_matches_a_cold_open_bitwise(self, tmp_path):
        store = write_store(tmp_path / "store", grid_cells(values=[1.0] * 4))
        service = QueryService(summary_engine(store))
        watcher = StoreWatcher(
            service,
            [store],
            lambda generation: summary_engine(store, generation),
            interval=60,
        )
        write_store(store, grid_cells(values=[7.5] * 4))
        assert watcher.poll_once() is True

        cold = QueryEngine(store).load()
        for query in ("tau=0.3,rho=0.4,w=2", "tau=0.5,rho=0.6,w=2"):
            refreshed_answer = service.engine.answer(query)
            cold_answer = cold.answer(query)
            refreshed_answer.pop("cached")
            cold_answer.pop("cached")
            assert json.dumps(
                refreshed_answer, sort_keys=True
            ) == json.dumps(cold_answer, sort_keys=True)


@pytest.fixture(scope="module")
def real_store(tmp_path_factory):
    """One real checkpointed sweep store (two cells), built once."""
    from repro.core.config import ModelConfig
    from repro.experiments.parallel import run_sweep_parallel
    from repro.experiments.spec import SweepSpec

    directory = tmp_path_factory.mktemp("lifecycle") / "store"
    sweep = SweepSpec(
        name="lifecycle-refresh",
        base_config=ModelConfig.square(side=10, horizon=1, tau=0.3),
        taus=(0.3, 0.45),
        n_replicates=1,
        seed=11,
    )
    run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
    return directory


class TestArtifactStoreRefresh:
    def test_refresh_observes_appended_records(self, real_store, tmp_path):
        """A handle opened mid-sweep sees appended cells after refresh()."""
        import shutil

        directory = tmp_path / "store"
        shutil.copytree(real_store, directory)
        metrics = directory / "metrics.jsonl"
        full = metrics.read_bytes()
        lines = full.splitlines(keepends=True)
        assert len(lines) >= 2

        # open the store as of the first record only
        metrics.write_bytes(lines[0])
        (directory / "summary.json").unlink()
        store = ArtifactStore(directory)
        assert len(store.answerable_cells()) == 1

        # the sweep "appends" the remaining records; the stale snapshot
        # keeps serving until refresh() drops the caches
        metrics.write_bytes(full)
        assert len(store.answerable_cells()) == 1
        store.refresh()
        assert len(store.answerable_cells()) == 2

        cold = ArtifactStore(directory)
        assert json.dumps(store.summary(), sort_keys=True) == json.dumps(
            cold.summary(), sort_keys=True
        )

    def test_refresh_with_torn_tail_serves_the_valid_prefix(
        self, real_store, tmp_path
    ):
        """A half-written append never corrupts answers, only defers them."""
        import shutil

        directory = tmp_path / "store"
        shutil.copytree(real_store, directory)
        (directory / "summary.json").unlink()
        store = ArtifactStore(directory, trust_summary=False)
        before = json.dumps(store.summary(), sort_keys=True)

        # a concurrent writer dies mid-line: the log gains a torn tail,
        # which the read-side scan drops (silently — the warning belongs to
        # the resume path), leaving exactly the valid-prefix answers
        with (directory / "metrics.jsonl").open("ab") as handle:
            handle.write(b'{"cell_index": 2, "rows": [{"tr')
        store.refresh()
        after = json.dumps(store.summary(), sort_keys=True)
        assert after == before

        cold = json.dumps(
            ArtifactStore(directory, trust_summary=False).summary(),
            sort_keys=True,
        )
        assert cold == before

    def test_untrusted_summary_ignores_the_summary_file(self, real_store):
        trusted = ArtifactStore(real_store)
        untrusted = ArtifactStore(real_store, trust_summary=False)
        # same aggregates either way on a clean store (the file is just the
        # serialization of the derivation)...
        assert json.dumps(
            trusted.summary()["cells"], sort_keys=True
        ) == json.dumps(untrusted.summary()["cells"], sort_keys=True)

    def test_untrusted_summary_is_immune_to_summary_tampering(
        self, real_store, tmp_path
    ):
        import shutil

        directory = tmp_path / "store"
        shutil.copytree(real_store, directory)
        summary_path = directory / "summary.json"
        payload = json.loads(summary_path.read_text())
        payload["cells"] = []
        summary_path.write_text(json.dumps(payload))

        assert ArtifactStore(directory).cells() == []
        assert len(
            ArtifactStore(directory, trust_summary=False).answerable_cells()
        ) == 2
