"""Integration tests: whole-pipeline behaviour matching the paper's claims."""

import numpy as np
import pytest

from repro.analysis.regions import monochromatic_radius_map
from repro.analysis.segregation import local_homogeneity, segregation_metrics
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import random_configuration
from repro.core.simulation import Simulation, simulate
from repro.core.state import ModelState
from repro.theory.bounds import exact_unhappy_probability
from repro.theory.intervals import segregation_expected, static_expected


class TestSegregationEmergence:
    """The headline phenomenon: random start, segregated finish."""

    def test_segregation_at_tau_042(self):
        # The Figure 1 parameters (scaled down): tau = 0.42.
        config = ModelConfig.square(side=60, horizon=2, tau=0.42)
        result = simulate(config, seed=0)
        assert result.terminated
        before = local_homogeneity(result.initial_spins, config.horizon)
        after = local_homogeneity(result.final_spins, config.horizon)
        assert before < 0.6
        assert after > 0.75

    def test_mean_region_size_grows_by_an_order_of_magnitude(self):
        config = ModelConfig.square(side=60, horizon=2, tau=0.45)
        result = simulate(config, seed=1)
        before = segregation_metrics(result.initial_spins, config, max_region_radius=8)
        after = segregation_metrics(result.final_spins, config, max_region_radius=8)
        assert after.mean_monochromatic_size > 10 * before.mean_monochromatic_size

    def test_both_types_survive_at_balanced_density(self):
        # Complete segregation does not occur w.h.p. at p = 1/2 (upper bound
        # side of the theorems / Section V).
        config = ModelConfig.square(side=60, horizon=2, tau=0.45)
        result = simulate(config, seed=2)
        plus_fraction = np.mean(result.final_spins == 1)
        assert 0.05 < plus_fraction < 0.95

    def test_static_regime_keeps_initial_configuration(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.2)
        assert static_expected(config.tau)
        result = simulate(config, seed=3)
        unchanged = np.mean(result.initial_spins == result.final_spins)
        assert unchanged > 0.99

    def test_segregating_regime_changes_many_sites(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.45)
        assert segregation_expected(config.tau)
        result = simulate(config, seed=4)
        assert result.flipped_fraction > 0.05


class TestMonotonicityAcrossTau:
    def test_theory_exponent_larger_farther_from_half(self):
        # The paper's counter-intuitive monotonicity is an asymptotic claim:
        # the exponent a(tau) of E[M] grows as tau moves away from 1/2 within
        # the Theorem 1 range.  At simulable horizons (N <= 49) the measured
        # ordering is dominated by how often a cascade ignites at all, so the
        # empirical comparison lives in the E7 benchmark (and EXPERIMENTS.md
        # records it as a finite-size deviation); here we check the theory
        # ordering and that both intolerances do segregate.
        from repro.theory.exponents import lower_exponent

        assert lower_exponent(0.44) > lower_exponent(0.48)

    def test_both_theorem1_taus_segregate(self):
        for tau in (0.44, 0.48):
            config = ModelConfig.square(side=50, horizon=2, tau=tau)
            result = simulate(config, seed=13)
            before = local_homogeneity(result.initial_spins, config.horizon)
            after = local_homogeneity(result.final_spins, config.horizon)
            assert after > before + 0.1


class TestSymmetryAroundHalf:
    def test_tau_and_one_minus_tau_behave_alike(self):
        results = {}
        for tau in (0.45, 0.55):
            config = ModelConfig.square(side=50, horizon=2, tau=tau)
            result = simulate(config, seed=5)
            results[tau] = local_homogeneity(result.final_spins, config.horizon)
        assert results[0.45] == pytest.approx(results[0.55], abs=0.12)

    def test_super_unhappy_flips_for_tau_above_half(self):
        # For tau > 1/2 only super-unhappy agents flip, but flips still occur
        # on a random configuration and every flip makes its agent happy.
        config = ModelConfig.square(side=40, horizon=2, tau=0.55)
        state = ModelState(config, random_configuration(config, seed=6))
        dynamics = GlauberDynamics(state, seed=7)
        flips = 0
        for _ in range(300):
            event = dynamics.step()
            if event is None:
                if dynamics.is_terminated:
                    break
                continue
            flips += 1
            assert state.is_happy(event.site.row, event.site.col)
        assert flips > 0


class TestInitialConfigurationStatistics:
    def test_unhappy_fraction_matches_lemma19_prediction(self):
        config = ModelConfig.square(side=80, horizon=2, tau=0.45)
        grid = random_configuration(config, seed=8)
        state = ModelState(config, grid)
        empirical = state.n_unhappy / config.n_sites
        assert empirical == pytest.approx(exact_unhappy_probability(config), abs=0.03)

    def test_initial_monochromatic_regions_are_tiny(self):
        config = ModelConfig.square(side=60, horizon=3, tau=0.45)
        grid = random_configuration(config, seed=9)
        radii = monochromatic_radius_map(grid.spins, max_radius=5)
        assert radii.mean() < 0.2


class TestReproducibility:
    def test_full_pipeline_reproducible(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.44)
        a = Simulation(config, seed=10).run()
        b = Simulation(config, seed=10).run()
        assert np.array_equal(a.final_spins, b.final_spins)
        assert a.final_time == pytest.approx(b.final_time)

    def test_snapshot_pipeline_matches_plain_run(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.44)
        plain = Simulation(config, seed=11).run()
        with_snapshots = Simulation(config, seed=11).run(
            snapshot_flip_counts=[0, 20, 100]
        )
        assert np.array_equal(plain.final_spins, with_snapshots.final_spins)
