"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    PercolationError,
    ReproError,
    StateError,
)


@pytest.mark.parametrize(
    "exception_class",
    [ConfigurationError, StateError, AnalysisError, PercolationError, ExperimentError],
)
def test_all_derive_from_repro_error(exception_class):
    assert issubclass(exception_class, ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)


def test_analysis_error_is_value_error():
    assert issubclass(AnalysisError, ValueError)


def test_percolation_error_is_value_error():
    assert issubclass(PercolationError, ValueError)


def test_state_error_is_runtime_error():
    assert issubclass(StateError, RuntimeError)


def test_experiment_error_is_runtime_error():
    assert issubclass(ExperimentError, RuntimeError)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(ReproError):
        raise ConfigurationError("bad config")
