"""Tests for the random number generator plumbing."""

import numpy as np
import pytest

from repro.rng import (
    choice_without_replacement,
    ensure_distinct,
    make_rng,
    replicate_seeds,
    spawn_rngs,
)


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(7).integers(0, 1000, size=5)
        b = make_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(42)
        rng = make_rng(sequence)
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [rng.integers(0, 10**9) for rng in spawn_rngs(3, 4)]
        b = [rng.integers(0, 10**9) for rng in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(1)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3


class TestReplicateSeeds:
    def test_distinct_and_deterministic(self):
        seeds = replicate_seeds(11, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10
        assert seeds == replicate_seeds(11, 10)

    def test_ensure_distinct_passes(self):
        ensure_distinct([1, 2, 3])

    def test_ensure_distinct_raises(self):
        with pytest.raises(ValueError):
            ensure_distinct([1, 2, 2])


class TestChoiceWithoutReplacement:
    def test_distinct_sample(self, rng):
        sample = choice_without_replacement(rng, range(100), 20)
        assert len(sample) == 20
        assert len(set(sample.tolist())) == 20

    def test_too_large_request_rejected(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, range(5), 6)
