"""Tests for the random number generator plumbing."""

import numpy as np
import pytest

from repro.rng import (
    choice_without_replacement,
    ensure_distinct,
    make_rng,
    replicate_seeds,
    spawn_rngs,
)


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(7).integers(0, 1000, size=5)
        b = make_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(42)
        rng = make_rng(sequence)
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [rng.integers(0, 10**9) for rng in spawn_rngs(3, 4)]
        b = [rng.integers(0, 10**9) for rng in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(1)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3


class TestReplicateSeeds:
    def test_distinct_and_deterministic(self):
        seeds = replicate_seeds(11, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10
        assert seeds == replicate_seeds(11, 10)

    def test_ensure_distinct_passes(self):
        ensure_distinct([1, 2, 3])

    def test_ensure_distinct_raises(self):
        with pytest.raises(ValueError):
            ensure_distinct([1, 2, 2])


class TestChoiceWithoutReplacement:
    def test_distinct_sample(self, rng):
        sample = choice_without_replacement(rng, range(100), 20)
        assert len(sample) == 20
        assert len(set(sample.tolist())) == 20

    def test_too_large_request_rejected(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, range(5), 6)


class TestZigguratTables:
    def test_tables_verify_against_live_draws(self):
        from repro.rng import _verify_ziggurat_tables, ziggurat_exponential_tables

        tables = ziggurat_exponential_tables()
        assert tables[0].shape == (256,)
        assert tables[1].shape == (256,)
        assert _verify_ziggurat_tables(tables)

    def test_corrupted_tables_fail_verification(self):
        from repro.rng import _verify_ziggurat_tables, ziggurat_exponential_tables

        we, ke = ziggurat_exponential_tables()
        corrupted = (we.copy(), ke.copy())
        corrupted[1][:] = 0  # force everything onto the (wrong) slow path
        assert not _verify_ziggurat_tables(corrupted)


class TestPcg64StateAfter:
    def test_matches_bit_generator_advance(self):
        from repro.rng import pcg64_state_after

        rng = np.random.default_rng(5)
        state = rng.bit_generator.state
        expected = np.random.Generator(np.random.PCG64())
        expected.bit_generator.state = state
        expected.bit_generator.advance(123)
        advanced = pcg64_state_after(
            state["state"]["state"], state["state"]["inc"], 123
        )
        assert advanced == expected.bit_generator.state["state"]["state"]


def _interleaved_reference(seeds, script):
    """Replay a draw script through per-replica scalar Generator calls."""
    rngs = [np.random.default_rng(seed) for seed in seeds]
    out = []
    for kind, replica, high in script:
        if kind == "exp":
            out.append(rngs[replica].standard_exponential())
        else:
            out.append(int(rngs[replica].integers(0, high)))
    return out, [rng.bit_generator.state for rng in rngs]


class TestBlockedReplicaStreams:
    """The blocked streams must replicate scalar Generator draws bitwise."""

    SEEDS = [101, 202, 303]

    def _script(self, n_steps=400, seed=0):
        rng = np.random.default_rng(seed)
        script = []
        for _ in range(n_steps):
            replica = int(rng.integers(0, len(self.SEEDS)))
            if rng.random() < 0.6:
                script.append(("exp", replica, 0))
            script.append(("int", replica, int(rng.integers(1, 50_000))))
        return script

    @pytest.mark.parametrize("block_words", [1, 2, 3, 64, 4096])
    def test_bitwise_equal_to_scalar_draws(self, block_words):
        """Boundary block sizes: one-word blocks force a refill per draw,
        larger ones exercise exact exhaustion and mid-block hand-offs."""
        from repro.rng import BlockedReplicaStreams

        streams = BlockedReplicaStreams(
            [np.random.default_rng(seed) for seed in self.SEEDS],
            block_words=block_words,
        )
        script = self._script()
        expected, _ = _interleaved_reference(self.SEEDS, script)
        for step, (kind, replica, high) in enumerate(script):
            rows = np.array([replica])
            if kind == "exp":
                got = streams.standard_exponential(rows)[0]
            else:
                got = int(
                    streams.bounded_integers(rows, np.array([high]))[0]
                )
            assert got == expected[step], (block_words, step, kind)

    def test_exact_exhaustion_boundary(self):
        """A block consumed exactly to its end refills with zero overrun."""
        from repro.rng import BlockedReplicaStreams

        streams = BlockedReplicaStreams(
            [np.random.default_rng(1)], block_words=4
        )
        reference = np.random.default_rng(1)
        rows = np.array([0])
        # high=2**32 would leave the 32-bit path; large highs below it
        # consume exactly one 32-bit half-word per draw -> 8 draws per block.
        for _ in range(16):
            got = int(streams.bounded_integers(rows, np.array([2**31]))[0])
            assert got == int(reference.integers(0, 2**31))
        assert streams._pos[0] in (0, 4) or streams._pos[0] < 4

    def test_draw_step_matches_split_calls(self):
        """The fused step draw equals exponential-then-integers, both regimes."""
        from repro.rng import BlockedReplicaStreams

        script_rng = np.random.default_rng(9)
        for scalar_regime in (True, False):
            split = BlockedReplicaStreams(
                [np.random.default_rng(seed) for seed in self.SEEDS]
            )
            fused = BlockedReplicaStreams(
                [np.random.default_rng(seed) for seed in self.SEEDS]
            )
            threshold = BlockedReplicaStreams.SCALAR_PATH_MAX
            if not scalar_regime:
                fused.SCALAR_PATH_MAX = -1  # force the vectorized branch
            try:
                for _ in range(200):
                    rows = np.arange(len(self.SEEDS), dtype=np.int64)
                    highs = script_rng.integers(1, 30_000, size=rows.size)
                    exp_a = split.standard_exponential(rows)
                    int_a = split.bounded_integers(rows, highs)
                    exp_b, int_b = fused.draw_step(rows, highs, True)
                    assert np.array_equal(exp_a, exp_b)
                    assert np.array_equal(int_a, int_b)
            finally:
                fused.SCALAR_PATH_MAX = threshold

    def test_high_of_one_consumes_nothing(self):
        from repro.rng import BlockedReplicaStreams

        streams = BlockedReplicaStreams([np.random.default_rng(3)])
        reference = np.random.default_rng(3)
        rows = np.array([0])
        assert int(streams.bounded_integers(rows, np.array([1]))[0]) == 0
        # The next draw still matches the scalar stream: integers(0, 1)
        # consumed no words there either.
        assert int(reference.integers(0, 1)) == 0
        assert int(streams.bounded_integers(rows, np.array([1000]))[0]) == int(
            reference.integers(0, 1000)
        )

    def test_rejects_non_pcg64_generators(self):
        from repro.rng import BlockedReplicaStreams

        bad = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValueError):
            BlockedReplicaStreams([bad])

    def test_rejects_bad_block_words(self):
        from repro.rng import BlockedReplicaStreams

        with pytest.raises(ValueError):
            BlockedReplicaStreams([np.random.default_rng(0)], block_words=0)
        with pytest.raises(ValueError):
            BlockedReplicaStreams([])
