"""Tests for same-type cluster statistics."""

import numpy as np
import pytest

from repro.analysis.clusters import (
    both_type_statistics,
    cluster_size_distribution,
    dominant_type_fraction,
    is_completely_segregated,
    largest_monochromatic_cluster_fraction,
    type_cluster_statistics,
)
from repro.types import AgentType


def striped(side: int, width: int) -> np.ndarray:
    rows = np.arange(side)[:, None]
    spins = np.where((rows // width) % 2 == 0, 1, -1).astype(np.int8)
    return np.broadcast_to(spins, (side, side)).copy()


class TestTypeClusterStatistics:
    def test_uniform_grid_single_cluster(self):
        spins = np.ones((8, 8), dtype=np.int8)
        stats = type_cluster_statistics(spins, AgentType.PLUS)
        assert stats.n_clusters == 1
        assert stats.largest_cluster == 64
        assert stats.largest_cluster_fraction == 1.0

    def test_absent_type_empty_stats(self):
        spins = np.ones((8, 8), dtype=np.int8)
        stats = type_cluster_statistics(spins, AgentType.MINUS)
        assert stats.n_clusters == 0
        assert stats.n_agents == 0
        assert stats.largest_cluster_fraction == 0.0

    def test_stripes_form_bands(self):
        spins = striped(12, 3)
        stats = type_cluster_statistics(spins, AgentType.PLUS, periodic=False)
        assert stats.n_clusters == 2
        assert stats.largest_cluster == 3 * 12

    def test_periodic_joins_wrap_around_stripes(self):
        spins = striped(12, 3)
        open_stats = type_cluster_statistics(spins, AgentType.MINUS, periodic=False)
        torus_stats = type_cluster_statistics(spins, AgentType.MINUS, periodic=True)
        assert open_stats.n_clusters >= torus_stats.n_clusters

    def test_as_dict_keys(self):
        spins = striped(8, 2)
        d = type_cluster_statistics(spins, AgentType.PLUS).as_dict()
        assert "largest_cluster_fraction" in d
        assert "mean_cluster_size" in d

    def test_both_types_cover_grid(self):
        spins = striped(10, 2)
        stats = both_type_statistics(spins)
        total = stats[AgentType.PLUS].n_agents + stats[AgentType.MINUS].n_agents
        assert total == 100


class TestDistributions:
    def test_cluster_size_distribution_sorted_descending(self, rng):
        spins = np.where(rng.random((20, 20)) < 0.5, 1, -1).astype(np.int8)
        sizes = cluster_size_distribution(spins, AgentType.PLUS)
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes.sum() == np.count_nonzero(spins == 1)


class TestGlobalIndicators:
    def test_dominant_type_fraction_balanced(self):
        spins = striped(10, 5)
        assert dominant_type_fraction(spins) == pytest.approx(0.5)

    def test_dominant_type_fraction_uniform(self):
        assert dominant_type_fraction(np.ones((5, 5), dtype=np.int8)) == 1.0

    def test_is_completely_segregated(self):
        assert is_completely_segregated(np.ones((4, 4), dtype=np.int8))
        assert is_completely_segregated(-np.ones((4, 4), dtype=np.int8))
        mixed = np.ones((4, 4), dtype=np.int8)
        mixed[0, 0] = -1
        assert not is_completely_segregated(mixed)

    def test_largest_monochromatic_cluster_fraction(self):
        spins = striped(12, 6)
        assert largest_monochromatic_cluster_fraction(spins) == pytest.approx(0.5)

    def test_largest_cluster_fraction_uniform(self):
        assert largest_monochromatic_cluster_fraction(np.ones((6, 6), dtype=np.int8)) == 1.0
