"""Tests for trajectory summaries."""

import pytest

from repro.analysis.trajectory import (
    flips_per_site,
    summarize_trajectory,
    time_to_fraction_unhappy,
    unhappy_decay_profile,
)
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics, Trajectory
from repro.core.initializer import random_configuration
from repro.core.state import ModelState
from repro.errors import AnalysisError


@pytest.fixture
def recorded_run():
    config = ModelConfig.square(side=24, horizon=2, tau=0.45)
    state = ModelState(config, random_configuration(config, seed=0))
    result = GlauberDynamics(state, seed=1).run(record_trajectory=True, record_every=10)
    return config, result


class TestSummaries:
    def test_summary_fields(self, recorded_run):
        config, result = recorded_run
        summary = summarize_trajectory(result.trajectory)
        assert summary.total_flips == result.n_flips
        assert summary.final_unhappy == 0
        assert summary.initial_unhappy > 0
        assert summary.energy_monotone
        assert summary.energy_gain > 0

    def test_summary_as_dict(self, recorded_run):
        _, result = recorded_run
        d = summarize_trajectory(result.trajectory).as_dict()
        assert "energy_gain" in d
        assert "final_time" in d

    def test_empty_trajectory_rejected(self):
        with pytest.raises(AnalysisError):
            summarize_trajectory(Trajectory())

    def test_flips_per_site(self, recorded_run):
        config, result = recorded_run
        value = flips_per_site(result.trajectory, config.n_sites)
        assert value == pytest.approx(result.n_flips / config.n_sites)

    def test_flips_per_site_validation(self, recorded_run):
        _, result = recorded_run
        with pytest.raises(AnalysisError):
            flips_per_site(result.trajectory, 0)


class TestDecayProfile:
    def test_profile_starts_at_one_and_ends_at_zero(self, recorded_run):
        _, result = recorded_run
        profile = unhappy_decay_profile(result.trajectory)
        assert profile[0] == pytest.approx(1.0)
        assert profile[-1] == pytest.approx(0.0)

    def test_time_to_fraction(self, recorded_run):
        _, result = recorded_run
        t_half = time_to_fraction_unhappy(result.trajectory, 0.5)
        t_zero = time_to_fraction_unhappy(result.trajectory, 0.0)
        assert 0 <= t_half <= t_zero

    def test_time_to_fraction_never_reached(self):
        trajectory = Trajectory(
            times=[0.0, 1.0], n_flips=[0, 1], n_unhappy=[10, 8],
            n_flippable=[10, 8], energy=[0, 1], magnetization=[0.0, 0.0],
        )
        assert time_to_fraction_unhappy(trajectory, 0.1) == float("inf")

    def test_fraction_validation(self, recorded_run):
        _, result = recorded_run
        with pytest.raises(AnalysisError):
            time_to_fraction_unhappy(result.trajectory, 1.5)

    def test_profile_of_terminated_start(self):
        trajectory = Trajectory(
            times=[0.0], n_flips=[0], n_unhappy=[0],
            n_flippable=[0], energy=[100], magnetization=[1.0],
        )
        assert unhappy_decay_profile(trajectory).tolist() == [0.0]
