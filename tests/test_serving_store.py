"""Artifact-store completion tests: ``summary.json`` and :class:`ArtifactStore`.

The contract under test: every checkpointed sweep that runs to completion
leaves a ``summary.json`` of per-cell aggregates next to the manifest; the
same file is derivable offline (``repro summarize`` /
:func:`~repro.experiments.checkpoint.write_summary`) byte-for-byte; and the
serving layer's :class:`~repro.serving.store.ArtifactStore` reads it — or
derives it in memory — without ever touching the execution engine.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import ModelConfig
from repro.errors import ExperimentError, ServingError
from repro.experiments.checkpoint import (
    SUMMARY_FORMAT,
    SUMMARY_NAME,
    summarize_store,
    write_summary,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.results import ResultTable
from repro.experiments.spec import SweepSpec, spec_hash
from repro.serving import ArtifactStore, sweep_from_snapshot

STAT_FIELDS = {"count", "mean", "std", "min", "max", "ci_low", "ci_high"}


def make_sweep(seed: int = 11) -> SweepSpec:
    """The small four-cell sweep used across this module."""
    base = ModelConfig.square(side=10, horizon=1, tau=0.3)
    return SweepSpec(
        name="serving-unit",
        base_config=base,
        taus=(0.3, 0.45),
        densities=(0.4, 0.6),
        n_replicates=2,
        seed=seed,
    )


@pytest.fixture
def sweep() -> SweepSpec:
    """Fixture wrapper around :func:`make_sweep`."""
    return make_sweep()


@pytest.fixture
def store(tmp_path, sweep) -> Path:
    """A completed checkpointed sweep (summary written at completion)."""
    directory = tmp_path / "store"
    run_sweep_parallel(sweep, workers=1, checkpoint_dir=directory)
    return directory


class TestSummaryAtCompletion:
    def test_completed_sweep_writes_summary(self, store):
        payload = json.loads((store / SUMMARY_NAME).read_text())
        assert payload["format"] == SUMMARY_FORMAT
        assert payload["n_cells"] == 4
        assert payload["n_summarized"] == 4
        assert payload["n_failed"] == 0
        assert payload["n_missing"] == 0
        assert payload["complete"] is True

    def test_cells_carry_params_and_full_stats(self, store, sweep):
        payload = json.loads((store / SUMMARY_NAME).read_text())
        cells = list(sweep.cells())
        assert [entry["name"] for entry in payload["cells"]] == [
            spec.name for spec in cells
        ]
        assert [entry["spec_hash"] for entry in payload["cells"]] == [
            spec_hash(spec) for spec in cells
        ]
        for entry, spec in zip(payload["cells"], cells):
            assert entry["params"] == {
                "tau": spec.config.tau,
                "w": spec.config.horizon,
                "rho": spec.config.density,
            }
            assert entry["n_replicates"] == 2
            assert entry["failure"] is None
            assert entry["metrics"], "every completed cell has aggregates"
            for stats in entry["metrics"].values():
                assert set(stats) == STAT_FIELDS
                assert stats["count"] == 2.0

    def test_mean_matches_recorded_rows(self, store, sweep):
        payload = json.loads((store / SUMMARY_NAME).read_text())
        table = run_sweep_parallel(sweep, workers=1, checkpoint_dir=store)
        cells = list(sweep.cells())
        first = payload["cells"][0]
        rows = [r for r in table.rows if r["experiment"] == cells[0].name]
        expected = sum(float(r["final_unhappy_fraction"]) for r in rows) / len(rows)
        assert first["metrics"]["final_unhappy_fraction"]["mean"] == pytest.approx(
            expected
        )

    def test_resumed_sweep_rewrites_identical_summary(self, store, sweep):
        before = (store / SUMMARY_NAME).read_bytes()
        run_sweep_parallel(sweep, workers=1, checkpoint_dir=store)  # resume no-op
        assert (store / SUMMARY_NAME).read_bytes() == before


class TestOfflineSummarize:
    def test_write_summary_is_byte_identical_to_completion_hook(self, store):
        at_completion = (store / SUMMARY_NAME).read_bytes()
        (store / SUMMARY_NAME).unlink()
        path = write_summary(store)
        assert path == store / SUMMARY_NAME
        assert path.read_bytes() == at_completion

    def test_summarize_store_matches_file(self, store):
        assert summarize_store(store) == json.loads(
            (store / SUMMARY_NAME).read_text()
        )

    def test_write_summary_leaves_no_temp_files(self, store):
        write_summary(store)
        leftovers = [
            p.name
            for p in store.iterdir()
            if p.name not in ("manifest.json", "metrics.jsonl", SUMMARY_NAME)
        ]
        assert leftovers == []

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            summarize_store(tmp_path)


class TestSummaryWithFailures:
    def test_quarantined_cell_reported_not_aggregated(self, tmp_path, sweep):
        directory = tmp_path / "store"
        table = run_sweep_parallel(
            sweep,
            workers=1,
            checkpoint_dir=directory,
            fault_plan=FaultPlan().crash(2, attempts=9),
            retries=0,
            on_error="skip",
        )
        assert len(table.failures) == 1
        payload = json.loads((directory / SUMMARY_NAME).read_text())
        assert payload["n_summarized"] == 3
        assert payload["n_failed"] == 1
        assert payload["complete"] is False
        failed = payload["cells"][2]
        assert failed["metrics"] == {}
        assert failed["n_replicates"] == 0
        assert "InjectedFault" in failed["failure"]["error"]


class TestArtifactStore:
    def test_reads_summary_from_disk(self, store):
        handle = ArtifactStore(store)
        assert handle.summary() == json.loads((store / SUMMARY_NAME).read_text())
        assert len(handle.cells()) == 4
        assert len(handle.answerable_cells()) == 4

    def test_derives_summary_when_file_absent(self, store):
        (store / SUMMARY_NAME).unlink()
        handle = ArtifactStore(store)
        assert handle.summary() == summarize_store(store)
        assert not (store / SUMMARY_NAME).exists(), "summary() must not write"

    def test_ensure_summary_writes_once(self, store):
        (store / SUMMARY_NAME).unlink()
        handle = ArtifactStore(store)
        path = handle.ensure_summary()
        assert path.exists()
        assert json.loads(path.read_text())["format"] == SUMMARY_FORMAT

    def test_accepts_manifest_path_spelling(self, store):
        handle = ArtifactStore(store / "manifest.json")
        assert handle.directory == store

    def test_rejects_missing_directory(self, tmp_path):
        with pytest.raises(ServingError):
            ArtifactStore(tmp_path / "nope")

    def test_corrupt_summary_file_falls_back_to_derivation(self, store):
        (store / SUMMARY_NAME).write_text("{not json")
        handle = ArtifactStore(store)
        assert handle.summary() == summarize_store(store)

    def test_sweep_round_trips_through_snapshot(self, store, sweep):
        rebuilt = ArtifactStore(store).sweep()
        assert rebuilt == sweep
        assert [spec_hash(c) for c in rebuilt.cells()] == [
            spec_hash(c) for c in sweep.cells()
        ]

    def test_sweep_from_snapshot_rejects_repr_snapshot(self):
        with pytest.raises(ServingError):
            sweep_from_snapshot({"repr": "SweepSpec(...)"})
        with pytest.raises(ServingError):
            sweep_from_snapshot(None)


class TestNumericSummary:
    def test_numeric_columns_excludes_strings(self):
        table = ResultTable(
            [
                {"name": "a", "x": 1, "flag": True, "y": 0.5},
                {"name": "b", "x": 2, "flag": False, "y": 1.5},
            ]
        )
        assert table.numeric_columns() == ["x", "flag", "y"]

    def test_numeric_summary_values(self):
        table = ResultTable([{"x": 1.0}, {"x": 3.0}])
        summary = table.numeric_summary()
        assert summary["x"]["mean"] == 2.0
        assert summary["x"]["min"] == 1.0
        assert summary["x"]["max"] == 3.0
        assert set(summary["x"]) == STAT_FIELDS

    def test_empty_table_raises(self):
        with pytest.raises(ExperimentError):
            ResultTable([]).numeric_summary()
