"""Tests for chemical distances (Garet-Marchand substrate)."""

import numpy as np
import pytest

from repro.errors import PercolationError
from repro.percolation.chemical import (
    chemical_distance,
    estimate_chemical_stretch,
    l1_distance,
)


class TestChemicalDistance:
    def test_straight_open_line(self):
        mask = np.zeros((5, 9), dtype=bool)
        mask[2, :] = True
        assert chemical_distance(mask, (2, 0), (2, 8)) == 8

    def test_distance_to_self_is_zero(self):
        mask = np.ones((4, 4), dtype=bool)
        assert chemical_distance(mask, (1, 1), (1, 1)) == 0

    def test_detour_counts_extra_steps(self):
        # An L-shaped corridor forces a detour longer than the l1 distance.
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, :] = True
        mask[:, 4] = True
        assert chemical_distance(mask, (0, 0), (4, 4)) == 8
        assert l1_distance((0, 0), (4, 4), (5, 5)) == 8

    def test_blocked_wall_forces_longer_path(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[1:5, 2] = False  # wall with a gap only at the top row
        direct = l1_distance((2, 0), (2, 4), (5, 5))
        assert chemical_distance(mask, (2, 0), (2, 4)) > direct

    def test_disconnected_returns_inf(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        assert chemical_distance(mask, (0, 0), (4, 4)) == float("inf")

    def test_closed_endpoint_returns_inf(self):
        mask = np.ones((4, 4), dtype=bool)
        mask[3, 3] = False
        assert chemical_distance(mask, (0, 0), (3, 3)) == float("inf")

    def test_periodic_shortcut(self):
        mask = np.ones((6, 6), dtype=bool)
        assert chemical_distance(mask, (0, 0), (0, 5), periodic=True) == 1
        assert chemical_distance(mask, (0, 0), (0, 5), periodic=False) == 5

    def test_equals_l1_on_fully_open_lattice(self, rng):
        mask = np.ones((9, 9), dtype=bool)
        for _ in range(5):
            a = tuple(int(v) for v in rng.integers(0, 9, size=2))
            b = tuple(int(v) for v in rng.integers(0, 9, size=2))
            assert chemical_distance(mask, a, b) == l1_distance(a, b, (9, 9))

    def test_non_2d_rejected(self):
        with pytest.raises(PercolationError):
            chemical_distance(np.ones(5, dtype=bool), (0, 0), (0, 1))


class TestL1Distance:
    def test_basic(self):
        assert l1_distance((0, 0), (2, 3), (10, 10)) == 5

    def test_periodic(self):
        assert l1_distance((0, 0), (9, 9), (10, 10), periodic=True) == 2


class TestStretchEstimate:
    def test_high_density_stretch_close_to_one(self):
        estimate = estimate_chemical_stretch(0.95, separation=10, n_trials=40, seed=0)
        assert estimate.connection_rate > 0.9
        assert np.mean(estimate.stretches) < 1.3

    def test_stretch_at_least_one(self):
        estimate = estimate_chemical_stretch(0.8, separation=8, n_trials=30, seed=1)
        assert np.all(estimate.stretches >= 1.0)

    def test_exceed_probability_small_at_high_density(self):
        estimate = estimate_chemical_stretch(0.95, separation=12, n_trials=40, seed=2)
        assert estimate.exceed_probability(0.5) < 0.2

    def test_lower_density_gives_larger_stretch(self):
        dense = estimate_chemical_stretch(0.95, separation=10, n_trials=40, seed=3)
        sparse = estimate_chemical_stretch(0.72, separation=10, n_trials=40, seed=3)
        if sparse.stretches.size and dense.stretches.size:
            assert np.mean(sparse.stretches) >= np.mean(dense.stretches)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PercolationError):
            estimate_chemical_stretch(0.9, separation=0, n_trials=10)
        with pytest.raises(PercolationError):
            estimate_chemical_stretch(0.9, separation=5, n_trials=0)
