"""Tests for radical regions, unhappy cores and the expandability check."""

import numpy as np
import pytest

from repro.analysis.radical import (
    count_radical_regions,
    is_radical_region,
    minority_count_in_window,
    radical_region_mask,
    radical_region_radius,
    try_expand_radical_region,
    unhappy_core_count,
    unhappy_core_target,
)
from repro.core.config import ModelConfig
from repro.core.grid import TorusGrid
from repro.core.initializer import (
    planted_radical_region_configuration,
    radical_region_threshold,
    random_configuration,
    uniform_configuration,
)
from repro.core.state import ModelState
from repro.errors import AnalysisError
from repro.types import AgentType


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=48, horizon=3, tau=0.45)


EPS = 0.5


class TestDetection:
    def test_radius_formula(self, config):
        assert radical_region_radius(config, 0.5) == int(1.5 * config.horizon)

    def test_invalid_epsilon_rejected(self, config):
        with pytest.raises(AnalysisError):
            radical_region_radius(config, 0.0)

    def test_minority_count_in_window(self, config):
        grid = uniform_configuration(config, AgentType.PLUS)
        grid.set(10, 10, -1)
        assert minority_count_in_window(grid.spins, (10, 10), 2, AgentType.PLUS) == 1
        assert minority_count_in_window(grid.spins, (30, 30), 2, AgentType.PLUS) == 0

    def test_uniform_grid_every_center_is_radical(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        assert is_radical_region(spins, config, (10, 10), EPS)
        assert count_radical_regions(spins, config, EPS) == config.n_sites

    def test_opposite_uniform_grid_has_no_radical_regions(self, config):
        spins = uniform_configuration(config, AgentType.MINUS).spins
        assert count_radical_regions(spins, config, EPS, AgentType.PLUS) == 0

    def test_planted_region_detected(self, config):
        center = (24, 24)
        grid = planted_radical_region_configuration(config, center, EPS, seed=0)
        assert is_radical_region(grid.spins, config, center, EPS)

    def test_mask_matches_scalar_checks(self, config):
        spins = random_configuration(config, seed=1).spins
        mask = radical_region_mask(spins, config, EPS)
        for site in [(0, 0), (13, 29), (40, 7)]:
            assert mask[site] == is_radical_region(spins, config, site, EPS)

    def test_random_grid_radical_fraction_matches_exact_probability(self, config):
        from repro.theory.bounds import exact_radical_region_probability

        spins = random_configuration(config, seed=2).spins
        fraction = count_radical_regions(spins, config, EPS) / config.n_sites
        expected = exact_radical_region_probability(config, epsilon_prime=EPS)
        # The per-centre events are positively correlated but exchangeable, so
        # the empirical fraction should sit near the exact single-centre
        # probability (Lemma 20) rather than near 1/2.
        assert fraction < 0.2
        assert fraction == pytest.approx(expected, abs=0.08)


class TestUnhappyCore:
    def test_target_positive(self, config):
        assert unhappy_core_target(config, 0.8) >= 0

    def test_core_count_on_planted_region(self, config):
        center = (24, 24)
        grid = planted_radical_region_configuration(
            config, center, EPS, minority_count=0, seed=3
        )
        state = ModelState(config, grid)
        # With no minority agents inside, the core has no unhappy minority agents.
        assert unhappy_core_count(state, center, EPS) == 0

    def test_core_count_bounded_by_core_size(self, config):
        center = (24, 24)
        grid = random_configuration(config, seed=4)
        state = ModelState(config, grid)
        core_radius = int(EPS * config.horizon)
        core_size = (2 * core_radius + 1) ** 2
        assert 0 <= unhappy_core_count(state, center, EPS) <= core_size


class TestExpansion:
    def test_planted_region_expands(self, config):
        center = (24, 24)
        grid = planted_radical_region_configuration(config, center, EPS, seed=5)
        result = try_expand_radical_region(config, grid.spins, center, EPS)
        assert result.expanded
        assert result.n_flips <= result.flip_budget
        assert result.within_budget

    def test_expansion_does_not_mutate_input(self, config):
        center = (24, 24)
        grid = planted_radical_region_configuration(config, center, EPS, seed=6)
        before = grid.spins.copy()
        try_expand_radical_region(config, grid.spins, center, EPS)
        assert np.array_equal(grid.spins, before)

    def test_already_monochromatic_core_expands_with_zero_flips(self, config):
        spins = uniform_configuration(config, AgentType.PLUS).spins
        result = try_expand_radical_region(config, spins, (24, 24), EPS)
        assert result.expanded
        assert result.n_flips == 0

    def test_hostile_region_does_not_expand(self, config):
        # A solidly -1 grid cannot be turned +1 by flips inside one window.
        spins = uniform_configuration(config, AgentType.MINUS).spins
        result = try_expand_radical_region(config, spins, (24, 24), EPS)
        assert not result.expanded

    def test_flip_budget_respected(self, config):
        center = (24, 24)
        grid = planted_radical_region_configuration(config, center, EPS, seed=7)
        result = try_expand_radical_region(
            config, grid.spins, center, EPS, flip_budget=1
        )
        assert result.n_flips <= 1

    def test_threshold_consistent_with_initializer(self, config):
        assert radical_region_threshold(config, EPS) > 0
