"""Tests for Bernoulli site percolation."""

import numpy as np
import pytest

from repro.errors import PercolationError
from repro.percolation.site import (
    SQUARE_SITE_CRITICAL_PROBABILITY,
    SitePercolation,
    estimate_theta,
    is_supercritical,
)


class TestSitePercolation:
    def test_sample_shape_and_density(self):
        config = SitePercolation.sample(40, 40, 0.6, seed=0)
        assert config.shape == (40, 40)
        assert 0.5 < config.open_fraction() < 0.7

    def test_sample_deterministic(self):
        a = SitePercolation.sample(20, 20, 0.5, seed=3)
        b = SitePercolation.sample(20, 20, 0.5, seed=3)
        assert np.array_equal(a.open_mask, b.open_mask)

    def test_invalid_probability_rejected(self):
        with pytest.raises(PercolationError):
            SitePercolation.sample(10, 10, -0.1, seed=0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(PercolationError):
            SitePercolation.sample(0, 10, 0.5, seed=0)

    def test_empty_mask_rejected(self):
        with pytest.raises(PercolationError):
            SitePercolation(np.zeros((0, 4), dtype=bool))

    def test_all_open_percolates(self):
        config = SitePercolation(np.ones((10, 10), dtype=bool))
        assert config.percolates()
        assert config.spans_horizontally()
        assert config.spans_vertically()
        assert config.n_clusters() == 1
        assert config.largest_cluster() == 100

    def test_all_closed_does_not_percolate(self):
        config = SitePercolation(np.zeros((10, 10), dtype=bool))
        assert not config.percolates()
        assert config.n_clusters() == 0

    def test_horizontal_strip_spans_horizontally_only(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[5, :] = True
        config = SitePercolation(mask)
        assert config.spans_horizontally()
        assert not config.spans_vertically()

    def test_cluster_of(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, 2:5] = True
        config = SitePercolation(mask)
        assert config.cluster_of((2, 3)).sum() == 3
        assert config.cluster_of((0, 0)).sum() == 0

    def test_labels_cached(self):
        config = SitePercolation.sample(15, 15, 0.5, seed=1)
        assert config.labels() is config.labels()


class TestTheta:
    def test_theta_increases_with_p(self):
        low = estimate_theta(0.45, box_side=21, n_trials=40, seed=0)
        high = estimate_theta(0.85, box_side=21, n_trials=40, seed=0)
        assert high.theta > low.theta

    def test_theta_near_one_for_p_near_one(self):
        estimate = estimate_theta(0.98, box_side=21, n_trials=30, seed=1)
        assert estimate.theta > 0.9
        assert estimate.spanning_fraction == 1.0

    def test_theta_near_zero_well_below_criticality(self):
        estimate = estimate_theta(0.3, box_side=21, n_trials=30, seed=2)
        assert estimate.theta < 0.1

    def test_invalid_trials_rejected(self):
        with pytest.raises(PercolationError):
            estimate_theta(0.5, box_side=11, n_trials=0)


class TestCriticality:
    def test_critical_probability_value(self):
        assert SQUARE_SITE_CRITICAL_PROBABILITY == pytest.approx(0.5927, abs=1e-3)

    def test_is_supercritical(self):
        assert is_supercritical(0.7)
        assert not is_supercritical(0.5)

    def test_is_supercritical_rejects_out_of_range(self):
        with pytest.raises(PercolationError):
            is_supercritical(1.2)
