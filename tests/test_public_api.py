"""Tests of the top-level public API surface."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_version_and_paper(self):
        assert repro.__version__
        assert "Segregation" in repro.PAPER

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_key_classes_exported(self):
        for name in (
            "ModelConfig",
            "GlauberDynamics",
            "KawasakiDynamics",
            "Simulation",
            "TorusGrid",
            "SitePercolation",
            "FirstPassagePercolation",
            "ResultTable",
        ):
            assert name in repro.__all__

    def test_theory_functions_exported(self):
        assert repro.tau1() > repro.tau2()
        assert repro.classify_regime(0.45).value == "exponential_monochromatic"


class TestQuickstartFlow:
    def test_readme_quickstart(self):
        config = repro.ModelConfig.square(side=30, horizon=2, tau=0.45)
        result = repro.simulate(config, seed=0)
        metrics = repro.segregation_metrics(
            result.final_spins, config, max_region_radius=6
        )
        assert result.terminated
        assert metrics.unhappy_fraction == 0.0
        assert metrics.local_homogeneity > 0.6

    def test_docstring_example_names_exist(self):
        # The module docstring references these names; keep them importable.
        from repro import ModelConfig, segregation_metrics, simulate  # noqa: F401

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.percolation
        import repro.theory
        import repro.viz

        assert repro.core.neighborhood_size(2) == 25
        assert repro.percolation.SQUARE_SITE_CRITICAL_PROBABILITY > 0.5
