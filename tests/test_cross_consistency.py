"""Cross-module consistency checks.

These tests tie together quantities that are computed in different subpackages
but must agree with each other: theory-side formulas versus analysis-side
counting, experiment tables versus the metrics they are built from, and the
visualisation layer versus the model's happiness definitions.
"""

import numpy as np
import pytest

from repro.analysis.radical import radical_region_mask, radical_region_radius
from repro.analysis.regions import (
    monochromatic_radius_map,
    region_sizes_from_radii,
)
from repro.analysis.segregation import segregation_metrics, unhappy_fraction
from repro.core.config import ModelConfig
from repro.core.initializer import radical_region_threshold, random_configuration
from repro.core.lyapunov import same_type_count_field
from repro.core.neighborhood import neighborhood_size, square_mask
from repro.core.simulation import simulate
from repro.core.state import ModelState
from repro.theory.bounds import (
    exact_radical_region_probability,
    exact_unhappy_probability,
    firewall_radius_scale,
    unhappy_probability_exponent,
)
from repro.theory.entropy import binary_entropy_complement
from repro.theory.exponents import lower_exponent, upper_exponent
from repro.theory.intervals import figure2_intervals, segregation_expected
from repro.theory.thresholds import tau1, tau2, tau_prime, trigger_epsilon
from repro.viz.ppm import FIGURE1_COLORS, spins_to_rgb


class TestTheoryVersusCounting:
    def test_unhappy_exponent_matches_exact_probability_decay(self):
        # log2 of the exact p_u should shrink by roughly the exponent per
        # added neighbourhood agent, once N is moderately large.
        tau = 0.42
        small = ModelConfig.square(side=80, horizon=5, tau=tau)
        large = ModelConfig.square(side=100, horizon=7, tau=tau)
        log_small = np.log2(exact_unhappy_probability(small))
        log_large = np.log2(exact_unhappy_probability(large))
        measured_rate = (log_small - log_large) / (
            large.neighborhood_agents - small.neighborhood_agents
        )
        predicted = unhappy_probability_exponent(tau)
        assert measured_rate == pytest.approx(predicted, rel=0.35)

    def test_radical_mask_count_matches_exact_probability_scaling(self):
        config = ModelConfig.square(side=60, horizon=2, tau=0.45)
        eps = 0.5
        probability = exact_radical_region_probability(config, epsilon_prime=eps)
        counts = []
        for seed in range(5):
            spins = random_configuration(config, seed=seed).spins
            counts.append(radical_region_mask(spins, config, eps).mean())
        assert np.mean(counts) == pytest.approx(probability, abs=0.05)

    def test_radical_threshold_consistent_between_modules(self):
        config = ModelConfig.square(side=60, horizon=3, tau=0.45)
        eps = 0.4
        threshold = radical_region_threshold(config, eps)
        radius = radical_region_radius(config, eps)
        # The threshold can never exceed the region size.
        assert 0 < threshold < neighborhood_size(radius)

    def test_exponents_only_defined_inside_figure2_segregating_band(self):
        for interval in figure2_intervals():
            midpoint = (interval.low + interval.high) / 2.0
            if segregation_expected(midpoint):
                assert lower_exponent(midpoint) > 0
                assert upper_exponent(midpoint) > lower_exponent(midpoint)

    def test_trigger_epsilon_defined_on_theorem2_band(self):
        for tau in np.linspace(tau2() + 1e-3, tau1(), 8):
            assert 0.0 < trigger_epsilon(float(tau)) < 0.5

    def test_firewall_scale_uses_lemma19_exponent(self):
        tau, n = 0.45, 49
        expected = 2.0 ** (
            binary_entropy_complement(tau_prime(tau, n)) * n / 2.0
        )
        assert firewall_radius_scale(tau, n) == pytest.approx(expected)


class TestMetricsVersusState:
    def test_unhappy_fraction_consistent_with_state_and_field(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        grid = random_configuration(config, seed=1)
        state = ModelState(config, grid)
        field = same_type_count_field(grid.spins, config.horizon)
        from_field = float(np.mean(field < config.happiness_threshold))
        assert unhappy_fraction(grid.spins, config) == pytest.approx(from_field)
        assert state.n_unhappy == int(round(from_field * config.n_sites))

    def test_mean_monochromatic_size_matches_radius_map(self):
        config = ModelConfig.square(side=30, horizon=2, tau=0.45)
        result = simulate(config, seed=2)
        metrics = segregation_metrics(result.final_spins, config, max_region_radius=6)
        radii = monochromatic_radius_map(result.final_spins, max_radius=6)
        assert metrics.mean_monochromatic_size == pytest.approx(
            float(region_sizes_from_radii(radii).mean())
        )
        assert metrics.max_monochromatic_radius == int(radii.max())

    def test_energy_metric_matches_state_energy(self):
        config = ModelConfig.square(side=24, horizon=2, tau=0.45)
        grid = random_configuration(config, seed=3)
        state = ModelState(config, grid)
        metrics = segregation_metrics(grid.spins, config, max_region_radius=4)
        assert metrics.energy == state.energy()

    def test_radical_centers_lie_inside_their_threshold(self):
        config = ModelConfig.square(side=40, horizon=2, tau=0.45)
        spins = random_configuration(config, seed=4).spins
        eps = 0.5
        mask = radical_region_mask(spins, config, eps)
        threshold = radical_region_threshold(config, eps)
        radius = radical_region_radius(config, eps)
        centers = np.argwhere(mask)
        for row, col in centers[:5]:
            window = square_mask(config.n_rows, config.n_cols, (int(row), int(col)), radius)
            minority = int(np.count_nonzero(spins[window] == -1))
            assert minority < threshold


class TestVisualisationVersusModel:
    def test_figure1_colors_track_happiness(self):
        config = ModelConfig.square(side=24, horizon=2, tau=0.45)
        grid = random_configuration(config, seed=5)
        state = ModelState(config, grid)
        rgb = spins_to_rgb(grid.spins, state.happy_mask())
        unhappy_plus = (grid.spins == 1) & ~state.happy_mask()
        if unhappy_plus.any():
            row, col = np.argwhere(unhappy_plus)[0]
            assert tuple(rgb[row, col]) == FIGURE1_COLORS[("plus", "unhappy")]
        happy_minus = (grid.spins == -1) & state.happy_mask()
        if happy_minus.any():
            row, col = np.argwhere(happy_minus)[0]
            assert tuple(rgb[row, col]) == FIGURE1_COLORS[("minus", "happy")]

    def test_terminated_run_renders_only_happy_colors(self):
        config = ModelConfig.square(side=24, horizon=2, tau=0.45)
        result = simulate(config, seed=6)
        state = ModelState(config, grid=None)
        state.apply_spin_array(result.final_spins)
        rgb = spins_to_rgb(result.final_spins, state.happy_mask())
        flat = rgb.reshape(-1, 3)
        allowed = {
            FIGURE1_COLORS[("plus", "happy")],
            FIGURE1_COLORS[("minus", "happy")],
        }
        assert {tuple(pixel) for pixel in flat} <= allowed
