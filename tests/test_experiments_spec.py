"""Tests for experiment and sweep specifications."""

import pytest

from repro.core.config import ModelConfig
from repro.core.variants import VariantSpec
from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentSpec, SweepSpec


@pytest.fixture
def base_config() -> ModelConfig:
    return ModelConfig.square(side=30, horizon=2, tau=0.45)


class TestExperimentSpec:
    def test_valid_spec(self, base_config):
        spec = ExperimentSpec(name="demo", config=base_config, n_replicates=2, seed=1)
        assert spec.name == "demo"
        assert spec.n_replicates == 2

    def test_empty_name_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="", config=base_config)

    def test_zero_replicates_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="demo", config=base_config, n_replicates=0)


class TestSweepSpec:
    def test_cells_cover_cartesian_product(self, base_config):
        sweep = SweepSpec(
            name="grid",
            base_config=base_config,
            taus=[0.40, 0.45],
            horizons=[1, 2],
            n_replicates=1,
        )
        cells = list(sweep.cells())
        assert len(cells) == 4
        assert sweep.n_cells() == 4
        taus = {cell.config.tau for cell in cells}
        horizons = {cell.config.horizon for cell in cells}
        assert taus == {0.40, 0.45}
        assert horizons == {1, 2}

    def test_empty_axes_keep_base_values(self, base_config):
        sweep = SweepSpec(name="taus", base_config=base_config, taus=[0.4])
        cell = next(iter(sweep.cells()))
        assert cell.config.horizon == base_config.horizon
        assert cell.config.density == base_config.density

    def test_cell_seeds_distinct(self, base_config):
        sweep = SweepSpec(
            name="grid", base_config=base_config, taus=[0.40, 0.45, 0.48]
        )
        seeds = [cell.seed for cell in sweep.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_cell_names_mention_parameters(self, base_config):
        sweep = SweepSpec(name="grid", base_config=base_config, taus=[0.42])
        cell = next(iter(sweep.cells()))
        assert "tau=0.4200" in cell.name
        assert cell.name.startswith("grid[")

    def test_no_axes_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            SweepSpec(name="empty", base_config=base_config)

    def test_empty_name_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            SweepSpec(name="", base_config=base_config, taus=[0.4])

    def test_max_flips_propagated(self, base_config):
        sweep = SweepSpec(
            name="budget", base_config=base_config, taus=[0.4], max_flips=17
        )
        assert next(iter(sweep.cells())).max_flips == 17


class TestVariantSurface:
    """Variant and budget fields ride through spec expansion unchanged."""

    def test_variant_and_max_steps_propagate_to_cells(self, base_config):
        variant = VariantSpec.asymmetric(0.3)
        sweep = SweepSpec(
            name="variant",
            base_config=base_config,
            taus=[0.4, 0.45],
            max_steps=1000,
            variant=variant,
        )
        for cell in sweep.cells():
            assert cell.variant == variant
            assert cell.max_steps == 1000

    def test_default_variant_is_base(self, base_config):
        spec = ExperimentSpec(name="unit", config=base_config)
        assert spec.variant.is_base
        assert spec.max_steps is None

    @pytest.mark.parametrize(
        "variant",
        [VariantSpec.two_sided(0.8), VariantSpec.asymmetric(0.3)],
        ids=["two_sided", "asymmetric"],
    )
    def test_variant_without_budget_rejected(self, base_config, variant):
        # No non-base rule carries the Lyapunov termination guarantee, so
        # budget-less variant specs are construction errors.
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="unit", config=base_config, variant=variant)
        with pytest.raises(ExperimentError):
            SweepSpec(
                name="sweep", base_config=base_config, taus=[0.4], variant=variant
            )

    def test_two_sided_with_budget_accepted(self, base_config):
        spec = ExperimentSpec(
            name="unit",
            config=base_config,
            max_steps=500,
            variant=VariantSpec.two_sided(0.8),
        )
        assert spec.variant.tau_high == 0.8
        sweep = SweepSpec(
            name="sweep",
            base_config=base_config,
            taus=[0.4],
            max_flips=100,
            variant=VariantSpec.two_sided(0.8),
        )
        assert next(iter(sweep.cells())).max_flips == 100

    def test_non_variant_spec_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="unit", config=base_config, variant="two_sided")
