"""Tests for experiment and sweep specifications."""

import pytest

from repro.core.config import ModelConfig
from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentSpec, SweepSpec


@pytest.fixture
def base_config() -> ModelConfig:
    return ModelConfig.square(side=30, horizon=2, tau=0.45)


class TestExperimentSpec:
    def test_valid_spec(self, base_config):
        spec = ExperimentSpec(name="demo", config=base_config, n_replicates=2, seed=1)
        assert spec.name == "demo"
        assert spec.n_replicates == 2

    def test_empty_name_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="", config=base_config)

    def test_zero_replicates_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            ExperimentSpec(name="demo", config=base_config, n_replicates=0)


class TestSweepSpec:
    def test_cells_cover_cartesian_product(self, base_config):
        sweep = SweepSpec(
            name="grid",
            base_config=base_config,
            taus=[0.40, 0.45],
            horizons=[1, 2],
            n_replicates=1,
        )
        cells = list(sweep.cells())
        assert len(cells) == 4
        assert sweep.n_cells() == 4
        taus = {cell.config.tau for cell in cells}
        horizons = {cell.config.horizon for cell in cells}
        assert taus == {0.40, 0.45}
        assert horizons == {1, 2}

    def test_empty_axes_keep_base_values(self, base_config):
        sweep = SweepSpec(name="taus", base_config=base_config, taus=[0.4])
        cell = next(iter(sweep.cells()))
        assert cell.config.horizon == base_config.horizon
        assert cell.config.density == base_config.density

    def test_cell_seeds_distinct(self, base_config):
        sweep = SweepSpec(
            name="grid", base_config=base_config, taus=[0.40, 0.45, 0.48]
        )
        seeds = [cell.seed for cell in sweep.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_cell_names_mention_parameters(self, base_config):
        sweep = SweepSpec(name="grid", base_config=base_config, taus=[0.42])
        cell = next(iter(sweep.cells()))
        assert "tau=0.4200" in cell.name
        assert cell.name.startswith("grid[")

    def test_no_axes_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            SweepSpec(name="empty", base_config=base_config)

    def test_empty_name_rejected(self, base_config):
        with pytest.raises(ExperimentError):
            SweepSpec(name="", base_config=base_config, taus=[0.4])

    def test_max_flips_propagated(self, base_config):
        sweep = SweepSpec(
            name="budget", base_config=base_config, taus=[0.4], max_flips=17
        )
        assert next(iter(sweep.cells())).max_flips == 17
