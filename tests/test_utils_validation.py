"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    require_in_range,
    require_odd,
    require_positive,
    require_positive_int,
    require_probability,
    require_spin_array,
)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_positive_int(True, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            require_positive_int(-1, "horizon")


class TestRequirePositive:
    def test_accepts_float(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            require_positive(float("nan"), "x")

    def test_rejects_infinity(self):
        with pytest.raises(ConfigurationError):
            require_positive(float("inf"), "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            require_positive("three", "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ConfigurationError):
            require_probability(value, "p")


class TestRequireInRange:
    def test_inclusive_endpoints(self):
        assert require_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert require_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_endpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_exclusive_interior_accepted(self):
        assert require_in_range(0.5, "x", 0.0, 1.0, inclusive=False) == 0.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            require_in_range(2.0, "x", 0.0, 1.0)


class TestRequireOdd:
    def test_accepts_odd(self):
        assert require_odd(5, "x") == 5

    def test_rejects_even(self):
        with pytest.raises(ConfigurationError):
            require_odd(4, "x")


class TestRequireSpinArray:
    def test_accepts_plus_minus_ones(self):
        arr = require_spin_array([[1, -1], [-1, 1]])
        assert arr.dtype == np.int8
        assert arr.shape == (2, 2)

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            require_spin_array([[1, 0], [-1, 1]])

    def test_rejects_one_dimensional(self):
        with pytest.raises(ConfigurationError):
            require_spin_array([1, -1, 1])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            require_spin_array(np.zeros((0, 3)))

    def test_preserves_values(self):
        original = np.array([[1, -1], [1, 1]], dtype=np.int64)
        arr = require_spin_array(original)
        assert np.array_equal(arr, original)
