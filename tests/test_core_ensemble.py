"""Cross-consistency tests: EnsembleDynamics must match the scalar engine.

The vectorized engine claims *bitwise* equivalence with scalar runs: replica
``r`` of an ensemble seeded with master seed ``S`` reproduces the scalar
:class:`~repro.core.simulation.Simulation` seeded with
``ensemble.replica_seeds[r]`` exactly — same final grid, flip count,
termination flag and final clock — across schedulers, tau regimes and grid
shapes.  These tests are the contract that lets every experiment switch
between engines freely.
"""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.ensemble import EnsembleDynamics, run_ensemble
from repro.core.initializer import random_configuration
from repro.core.simulation import Simulation
from repro.core.state import ModelState
from repro.errors import ConfigurationError, StateError
from repro.rng import spawn_rngs
from repro.types import FlipRule, SchedulerKind

SCHEDULERS = [SchedulerKind.CONTINUOUS, SchedulerKind.DISCRETE]
#: One intolerance at or below 1/2 (every unhappy agent flippable) and one
#: above (only super-unhappy agents flippable) — the two bookkeeping regimes.
TAUS = [0.35, 0.55]
SHAPES = [(18, 18), (14, 22)]


def scalar_reference(config: ModelConfig, seed: int, max_flips=None):
    """The scalar run an ensemble replica with this seed must reproduce."""
    simulation = Simulation(config, seed=seed)
    return simulation.run(max_flips=max_flips)


class TestScalarEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("tau", TAUS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_replicas_match_scalar_runs_exactly(self, scheduler, tau, shape):
        config = ModelConfig(
            n_rows=shape[0],
            n_cols=shape[1],
            horizon=2,
            tau=tau,
            scheduler=scheduler,
        )
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=42)
        result = ensemble.run()
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed)
            assert np.array_equal(
                reference.final_spins, result.final_spins[replica]
            ), f"final grids diverge for replica {replica}"
            assert reference.n_flips == result.n_flips[replica]
            assert reference.n_steps == result.n_steps[replica]
            assert reference.terminated == bool(result.terminated[replica])
            assert reference.final_time == result.final_time[replica]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_flip_budget_matches_scalar_runs(self, scheduler):
        config = ModelConfig.square(
            side=20, horizon=2, tau=0.45, scheduler=scheduler
        )
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=5)
        result = ensemble.run(max_flips=40)
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed, max_flips=40)
            assert np.array_equal(reference.final_spins, result.final_spins[replica])
            assert reference.n_flips == result.n_flips[replica] <= 40

    def test_always_flip_rule_matches_scalar_runs(self):
        config = ModelConfig.square(
            side=16, horizon=1, tau=0.4, flip_rule=FlipRule.ALWAYS
        )
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=9)
        result = ensemble.run(max_flips=150)
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed, max_flips=150)
            assert np.array_equal(reference.final_spins, result.final_spins[replica])
            assert reference.n_flips == result.n_flips[replica]

    def test_planted_initial_spins_match_scalar_dynamics(self):
        config = ModelConfig.square(side=18, horizon=2, tau=0.45)
        seeds = [101, 202, 303]
        grids = [
            random_configuration(config, seed=1000 + index).spins
            for index in range(len(seeds))
        ]
        ensemble = EnsembleDynamics(
            config,
            replica_seeds=seeds,
            initial_spins=np.stack(grids),
        )
        result = ensemble.run()
        for replica, seed in enumerate(seeds):
            # Mirror the engine's stream split: the init stream is spawned
            # (and discarded, since the grid is planted), the dynamics stream
            # drives the scalar engine.
            _, dynamics_rng = spawn_rngs(seed, 2)
            state = ModelState(config, grid=None)
            state.apply_spin_array(grids[replica])
            reference = GlauberDynamics(state, seed=dynamics_rng).run()
            assert np.array_equal(state.grid.spins, result.final_spins[replica])
            assert reference.n_flips == result.n_flips[replica]


class TestReplicaIsolation:
    def test_single_replica_ensemble_reproduces_ensemble_member(self):
        """Any replica can be re-run in isolation from its own seed."""
        config = ModelConfig.square(side=18, horizon=2, tau=0.45)
        ensemble = EnsembleDynamics(config, n_replicas=4, seed=77)
        result = ensemble.run()
        for replica, seed in enumerate(ensemble.replica_seeds):
            solo = EnsembleDynamics(config, replica_seeds=[seed])
            solo_result = solo.run()
            assert np.array_equal(
                solo_result.final_spins[0], result.final_spins[replica]
            )
            assert solo_result.n_flips[0] == result.n_flips[replica]

    def test_replica_seeds_are_distinct_and_reproducible(self):
        config = ModelConfig.square(side=14, horizon=1, tau=0.4)
        a = EnsembleDynamics(config, n_replicas=6, seed=3)
        b = EnsembleDynamics(config, n_replicas=6, seed=3)
        assert a.replica_seeds == b.replica_seeds
        assert len(set(a.replica_seeds)) == 6


class TestEngineInvariants:
    def test_termination_empties_flippable_sets(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=1)
        result = ensemble.run()
        assert result.all_terminated
        assert np.all(ensemble.flippable_counts() == 0)
        for replica in range(3):
            assert ensemble.flippable_indices(replica).size == 0

    def test_step_all_returns_flipping_replicas(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=2)
        before = ensemble.n_flips
        flipped = ensemble.step_all()
        after = ensemble.n_flips
        assert sorted(flipped.tolist()) == sorted(np.flatnonzero(after - before).tolist())

    def test_run_result_reports_totals(self):
        config = ModelConfig.square(side=14, horizon=1, tau=0.4)
        result = run_ensemble(config, n_replicas=3, seed=8, max_flips=30)
        assert result.n_replicas == 3
        assert result.total_flips == int(result.n_flips.sum())
        assert result.final_spins.shape == (3, 14, 14)

    def test_masks_and_counts_match_fresh_model_state(self):
        config = ModelConfig.square(side=18, horizon=2, tau=0.55)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=21)
        ensemble.run(max_flips=50)
        for replica in range(3):
            reference = ModelState(config, grid=None)
            reference.apply_spin_array(ensemble.replica_spins(replica))
            assert np.array_equal(
                ensemble.happy_mask(replica), reference.happy_mask()
            )
            assert np.array_equal(
                ensemble.flippable_mask(replica), reference.flippable_mask()
            )
            assert ensemble.unhappy_counts()[replica] == reference.n_unhappy
            assert ensemble.flippable_counts()[replica] == reference.n_flippable
            assert np.array_equal(
                ensemble.unhappy_indices(replica),
                np.flatnonzero(reference.unhappy_mask().ravel()),
            )

    def test_energies_match_model_state_energy(self):
        config = ModelConfig.square(side=16, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=13)
        ensemble.run(max_flips=25)
        energies = ensemble.energies()
        for replica in range(2):
            reference = ModelState(config, grid=None)
            reference.apply_spin_array(ensemble.replica_spins(replica))
            assert energies[replica] == reference.energy()


class TestValidation:
    def test_rejects_nonpositive_replica_count(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        with pytest.raises(ConfigurationError):
            EnsembleDynamics(config, n_replicas=0, seed=1)
        with pytest.raises(ConfigurationError):
            EnsembleDynamics(config, seed=1)

    def test_rejects_empty_replica_seeds(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        with pytest.raises(ConfigurationError):
            EnsembleDynamics(config, replica_seeds=[])

    def test_rejects_bad_initial_spins(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        with pytest.raises(ConfigurationError):
            EnsembleDynamics(
                config,
                replica_seeds=[1, 2],
                initial_spins=np.ones((3, 12, 12), dtype=np.int8),
            )
        with pytest.raises(ConfigurationError):
            EnsembleDynamics(
                config,
                replica_seeds=[1],
                initial_spins=np.zeros((1, 12, 12), dtype=np.int8),
            )


class TestIncrementalEnergies:
    """energies()/magnetizations() are incremental counters kept exact per flip."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_energies_match_full_recompute_after_run(self, scheduler, tau):
        config = ModelConfig.square(side=16, horizon=1, tau=tau, scheduler=scheduler)
        ensemble = EnsembleDynamics(config, n_replicas=4, seed=13)
        ensemble.run(max_flips=250)
        assert np.array_equal(ensemble.energies(), ensemble._energies_full())

    def test_energies_match_scalar_state_after_termination(self):
        config = ModelConfig.square(side=14, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=21)
        ensemble.run()
        energies = ensemble.energies()
        magnetizations = ensemble.magnetizations()
        for replica, seed in enumerate(ensemble.replica_seeds):
            simulation = Simulation(config, seed=seed)
            simulation.run()
            assert energies[replica] == simulation.state.energy()
            assert magnetizations[replica] == simulation.state.magnetization()

    def test_recompute_all_resets_counters(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=3)
        ensemble.run(max_flips=40)
        ensemble.recompute_all()
        assert np.array_equal(ensemble.energies(), ensemble._energies_full())


class TestEnsembleTrajectory:
    def test_arrays_have_replica_by_sample_shape(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        result = run_ensemble(config, n_replicas=3, seed=5, record_trajectory=True)
        trajectory = result.trajectory
        assert trajectory is not None
        samples = len(trajectory)
        assert samples >= 2
        for name in ("times", "n_flips", "n_unhappy", "n_flippable", "energy", "magnetization"):
            assert getattr(trajectory, name).shape == (3, samples)

    def test_no_recording_by_default(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        assert run_ensemble(config, n_replicas=2, seed=5).trajectory is None

    def test_record_every_thins_samples(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        dense = run_ensemble(config, n_replicas=2, seed=5, record_trajectory=True)
        sparse = run_ensemble(
            config, n_replicas=2, seed=5, record_trajectory=True, record_every=10
        )
        assert len(sparse.trajectory) < len(dense.trajectory)
        # endpoints are always recorded
        assert np.array_equal(
            dense.trajectory.energy[:, -1], sparse.trajectory.energy[:, -1]
        )

    def test_replica_view_matches_scalar_run_endpoints(self):
        config = ModelConfig.square(side=14, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=17)
        result = ensemble.run(record_trajectory=True)
        for replica, seed in enumerate(ensemble.replica_seeds):
            scalar = Simulation(config, seed=seed).run(
                record_trajectory=True, record_every=1
            )
            view = result.trajectory.replica(replica)
            assert view.energy[0] == scalar.trajectory.energy[0]
            assert view.energy[-1] == scalar.trajectory.energy[-1]
            assert view.n_flips[-1] == scalar.n_flips
            assert view.times[-1] == scalar.final_time
            assert view.magnetization[-1] == scalar.trajectory.magnetization[-1]
            assert view.n_unhappy[-1] == scalar.trajectory.n_unhappy[-1]

    def test_energy_monotone_along_rounds(self):
        config = ModelConfig.square(side=14, horizon=1, tau=0.45)
        result = run_ensemble(config, n_replicas=4, seed=23, record_trajectory=True)
        assert (np.diff(result.trajectory.energy, axis=1) >= 0).all()

    def test_replica_index_validated(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        result = run_ensemble(config, n_replicas=2, seed=5, record_trajectory=True)
        with pytest.raises(StateError):
            result.trajectory.replica(2)

    def test_record_every_validated(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=5)
        with pytest.raises(StateError):
            ensemble.run(record_trajectory=True, record_every=0)

    def test_final_sample_matches_scalar_when_run_ends_on_noop_steps(self):
        """Both engines' final-record guards key on flips OR times (review fix)."""
        config = ModelConfig.square(
            side=8, horizon=1, tau=0.6, scheduler=SchedulerKind.DISCRETE
        )
        ensemble = EnsembleDynamics(config, n_replicas=1, seed=0)
        eres = ensemble.run(max_steps=5, record_trajectory=True, record_every=1)
        init_rng, dynamics_rng = spawn_rngs(ensemble.replica_seeds[0], 2)
        state = ModelState(config, random_configuration(config, init_rng))
        scalar = GlauberDynamics(state, seed=dynamics_rng)
        sres = scalar.run(max_steps=5, record_trajectory=True, record_every=1)
        view = eres.trajectory.replica(0)
        assert view.times[-1] == sres.trajectory.times[-1]
        assert view.n_flips[-1] == sres.trajectory.n_flips[-1]
        assert view.energy[-1] == sres.trajectory.energy[-1]


class TestReferenceEngineEquivalence:
    """The retained pre-fusion engine and the fused engine are one dynamics."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("tau", TAUS)
    def test_fused_matches_reference_engine(self, scheduler, tau):
        from repro.core.ensemble import ReferenceEnsembleDynamics

        config = ModelConfig.square(
            side=16, horizon=2, tau=tau, scheduler=scheduler
        )
        fused = EnsembleDynamics(config, n_replicas=3, seed=99)
        reference = ReferenceEnsembleDynamics(config, n_replicas=3, seed=99)
        a = fused.run(max_flips=120)
        b = reference.run(max_flips=120)
        assert np.array_equal(a.final_spins, b.final_spins)
        assert np.array_equal(a.n_flips, b.n_flips)
        assert np.array_equal(a.n_steps, b.n_steps)
        assert np.array_equal(a.final_time, b.final_time)
        assert np.array_equal(a.terminated, b.terminated)

    def test_reference_matches_always_flip_rule(self):
        from repro.core.ensemble import ReferenceEnsembleDynamics

        config = ModelConfig.square(
            side=14, horizon=1, tau=0.4, flip_rule=FlipRule.ALWAYS
        )
        a = EnsembleDynamics(config, n_replicas=2, seed=4).run(max_flips=80)
        b = ReferenceEnsembleDynamics(config, n_replicas=2, seed=4).run(
            max_flips=80
        )
        assert np.array_equal(a.final_spins, b.final_spins)
        assert np.array_equal(a.final_time, b.final_time)

    def test_reference_accessors_match_fused(self):
        from repro.core.ensemble import ReferenceEnsembleDynamics

        config = ModelConfig.square(side=14, horizon=1, tau=0.55)
        fused = EnsembleDynamics(config, n_replicas=2, seed=31)
        reference = ReferenceEnsembleDynamics(config, n_replicas=2, seed=31)
        fused.run(max_flips=40)
        reference.run(max_flips=40)
        for replica in range(2):
            assert np.array_equal(
                fused.happy_mask(replica), reference.happy_mask(replica)
            )
            assert np.array_equal(
                fused.flippable_mask(replica), reference.flippable_mask(replica)
            )
            assert np.array_equal(
                fused.unhappy_indices(replica),
                reference.unhappy_indices(replica),
            )
            assert np.array_equal(
                fused.flippable_indices(replica),
                reference.flippable_indices(replica),
            )
        assert np.array_equal(fused.unhappy_counts(), reference.unhappy_counts())
        assert np.array_equal(fused.energies(), reference.energies())


class TestBlockedRngBoundaries:
    """Bitwise scalar equivalence must be independent of the RNG block size.

    ``rng_block_words=1`` refills on every draw (every consumption crosses a
    block edge), small sizes hit exact-exhaustion boundaries, and runs to
    termination always stop mid-block for the default size — the three
    regimes the blocked-RNG design note calls out.
    """

    @pytest.mark.parametrize("block_words", [1, 2, 7, 4096])
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_block_size_never_changes_results(self, block_words, scheduler):
        config = ModelConfig.square(
            side=14, horizon=1, tau=0.45, scheduler=scheduler
        )
        ensemble = EnsembleDynamics(
            config, n_replicas=2, seed=8, rng_block_words=block_words
        )
        result = ensemble.run()
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed)
            assert np.array_equal(
                reference.final_spins, result.final_spins[replica]
            ), f"block_words={block_words} diverges from scalar"
            assert reference.n_flips == result.n_flips[replica]
            assert reference.final_time == result.final_time[replica]

    def test_mid_block_termination_then_resume(self):
        """Stopping on a budget mid-block and resuming stays stream-exact."""
        config = ModelConfig.square(side=14, horizon=1, tau=0.45)
        ensemble = EnsembleDynamics(
            config, n_replicas=2, seed=12, rng_block_words=16
        )
        ensemble.run(max_flips=13)  # strand every replica mid-block
        ensemble.run()
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed)
            assert np.array_equal(
                reference.final_spins, ensemble.replica_spins(replica)
            )
            assert reference.final_time == float(ensemble.times[replica])

    def test_rejects_nonpositive_block_words(self):
        config = ModelConfig.square(side=12, horizon=1, tau=0.4)
        with pytest.raises(ValueError):
            EnsembleDynamics(config, n_replicas=1, seed=1, rng_block_words=0)


class TestDeferredCounters:
    """Non-recording runs defer energy counters; reads flush exact values."""

    def test_energies_after_plain_run_match_full_recompute(self):
        config = ModelConfig.square(side=16, horizon=2, tau=0.45)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=6)
        ensemble.run(max_flips=60)
        assert np.array_equal(ensemble.energies(), ensemble._energies_full())
        assert ensemble.magnetizations().shape == (3,)

    def test_direct_step_all_keeps_counters_live(self):
        config = ModelConfig.square(side=16, horizon=2, tau=0.45)
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=6)
        for _ in range(25):
            ensemble.step_all()
        assert not ensemble._counters_stale
        assert np.array_equal(ensemble.energies(), ensemble._energies_full())


class TestDispatchRegimes:
    """Both step_all regimes and both window-LUT layouts stay scalar-exact."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_vectorized_control_plane_matches_scalar(self, monkeypatch, scheduler):
        """Force the >SCALAR_PATH_MAX branch (vector filtering, draws,
        clocks, sampling) and pin it to scalar runs bitwise."""
        from repro.rng import BlockedReplicaStreams

        monkeypatch.setattr(BlockedReplicaStreams, "SCALAR_PATH_MAX", -1)
        config = ModelConfig.square(
            side=14, horizon=1, tau=0.45, scheduler=scheduler
        )
        ensemble = EnsembleDynamics(config, n_replicas=3, seed=19)
        result = ensemble.run(max_flips=60)
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed, max_flips=60)
            assert np.array_equal(
                reference.final_spins, result.final_spins[replica]
            )
            assert reference.n_flips == result.n_flips[replica]
            assert reference.final_time == result.final_time[replica]

    def test_vectorized_discrete_refusal_gate_matches_scalar(self, monkeypatch):
        from repro.rng import BlockedReplicaStreams

        monkeypatch.setattr(BlockedReplicaStreams, "SCALAR_PATH_MAX", -1)
        config = ModelConfig.square(
            side=14, horizon=1, tau=0.6, scheduler=SchedulerKind.DISCRETE
        )
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=3)
        result = ensemble.run(max_steps=80)
        for replica, seed in enumerate(ensemble.replica_seeds):
            simulation = Simulation(config, seed=seed)
            reference = simulation.run(max_steps=80)
            assert np.array_equal(
                reference.final_spins, result.final_spins[replica]
            )
            assert reference.n_steps == result.n_steps[replica]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_row_col_lut_fallback_matches_scalar(self, monkeypatch, scheduler):
        """Force the large-grid window-LUT fallback (two-gather path)."""
        import repro.core.ensemble as ensemble_module

        monkeypatch.setattr(ensemble_module, "_FULL_WINDOW_LUT_MAX_ENTRIES", 0)
        config = ModelConfig.square(
            side=14, horizon=2, tau=0.45, scheduler=scheduler
        )
        ensemble = EnsembleDynamics(config, n_replicas=2, seed=23)
        assert ensemble._window_lut is None  # the fallback is actually active
        result = ensemble.run(max_flips=60)
        for replica, seed in enumerate(ensemble.replica_seeds):
            reference = scalar_reference(config, seed, max_flips=60)
            assert np.array_equal(
                reference.final_spins, result.final_spins[replica]
            )
            assert reference.final_time == result.final_time[replica]
