"""Tests for the figure-reproduction experiments (small parameters)."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.experiments.figures import (
    figure1_snapshots,
    figure2_interval_sweep,
    figure3_exponent_table,
    figure6_trigger_table,
    monotonicity_experiment,
    symmetry_experiment,
    theorem1_scaling,
    theorem2_scaling,
)
from repro.theory.thresholds import tau2, trigger_epsilon


class TestFigure1:
    def test_snapshots_and_metrics(self):
        config = ModelConfig.square(side=60, horizon=2, tau=0.42)
        result = figure1_snapshots(config=config, seed=0, n_intermediate=1)
        assert result.terminated
        assert len(result.snapshots) >= 2
        assert len(result.metrics) == len(result.snapshots)
        # Homogeneity rises from the first to the last panel (self-segregation).
        homogeneity = result.metrics.numeric_column("local_homogeneity")
        assert homogeneity[-1] > homogeneity[0]
        # Final panel has no unhappy agents (tau < 1/2 terminates all-happy).
        assert result.metrics.numeric_column("unhappy_fraction")[-1] == 0.0

    def test_snapshot_flip_counts_increase(self):
        config = ModelConfig.square(side=50, horizon=2, tau=0.45)
        result = figure1_snapshots(config=config, seed=1, n_intermediate=2)
        flips = [snapshot.n_flips for snapshot in result.snapshots]
        assert flips == sorted(flips)


class TestFigure2:
    def test_sweep_rows_and_regimes(self):
        table = figure2_interval_sweep(
            horizon=1, taus=[0.2, 0.45], n_replicates=2, side=30, seed=0
        )
        assert len(table) == 2
        regimes = {row["tau"]: row["predicted_regime"] for row in table}
        assert regimes[0.2] == "static"
        assert regimes[0.45] == "exponential_monochromatic"

    def test_static_tau_flips_less_than_segregating_tau(self):
        table = figure2_interval_sweep(
            horizon=1, taus=[0.2, 0.45], n_replicates=2, side=30, seed=1
        )
        by_tau = {row["tau"]: row for row in table}
        assert by_tau[0.2]["n_flips_mean"] < by_tau[0.45]["n_flips_mean"]
        assert (
            by_tau[0.45]["final_mean_monochromatic_size_mean"]
            > by_tau[0.2]["final_mean_monochromatic_size_mean"]
        )


class TestFigure3AndFigure6:
    def test_exponent_table_columns(self):
        table = figure3_exponent_table(taus=[0.40, 0.45, 0.55])
        assert len(table) == 3
        for row in table:
            assert row["a"] < row["b"]
            assert row["f_tau"] >= 0

    def test_exponent_table_default_range(self):
        table = figure3_exponent_table()
        taus = table.numeric_column("tau")
        assert taus.min() > tau2()
        assert taus.max() < 1 - tau2()

    def test_trigger_table_matches_function(self):
        table = figure6_trigger_table(taus=[0.40, 0.45])
        for row in table:
            assert row["f_tau"] == pytest.approx(trigger_epsilon(row["tau"]))

    def test_trigger_table_decreasing_towards_half(self):
        table = figure6_trigger_table()
        values = table.numeric_column("f_tau")
        assert values[0] > values[-1]


class TestScalingExperiments:
    def test_theorem1_scaling_structure(self):
        result = theorem1_scaling(
            taus=[0.46], horizons=[1, 2], n_replicates=1, multiples=6, seed=0
        )
        assert len(result.measurements) == 2
        assert len(result.fits) == 1
        fit_row = result.fits[0]
        assert fit_row["theory_lower_rate"] < fit_row["theory_upper_rate"]
        assert fit_row["n_points"] == 2

    def test_theorem1_region_size_grows_with_horizon(self):
        result = theorem1_scaling(
            taus=[0.45], horizons=[1, 2], n_replicates=2, multiples=6, seed=1
        )
        sizes = result.measurements.numeric_column("mean_region_size")
        assert sizes[1] > sizes[0]
        assert result.fits[0]["measured_rate"] > 0

    def test_theorem2_scaling_structure(self):
        result = theorem2_scaling(
            taus=[0.40], horizons=[1, 2], n_replicates=1, multiples=6, seed=2
        )
        assert len(result.measurements) == 2
        assert result.fits[0]["measured_rate"] == result.fits[0]["measured_rate"]


class TestMonotonicityAndSymmetry:
    def test_monotonicity_table(self):
        table = monotonicity_experiment(
            horizon=1, taus=[0.40, 0.45, 0.48], n_replicates=2, seed=0
        )
        assert len(table) == 3
        # The theoretical exponent increases with distance from 1/2.
        rows = sorted(table.rows, key=lambda row: row["distance_from_half"])
        exponents = [row["theory_lower_exponent"] for row in rows]
        assert exponents == sorted(exponents)

    def test_symmetry_table(self):
        table = symmetry_experiment(
            horizon=1, taus_below_half=[0.45], n_replicates=2, seed=0
        )
        assert len(table) == 1
        row = table[0]
        assert row["mirrored_tau"] == pytest.approx(0.55)
        assert row["mean_size_below"] > 0
        assert row["mean_size_above"] > 0
        assert 0.1 < row["ratio_above_over_below"] < 10
