"""Tests for the Proposition 1 self-similarity estimator."""

import pytest

from repro.analysis.selfsimilar import estimate_subneighborhood_concentration
from repro.core.config import ModelConfig
from repro.errors import AnalysisError


@pytest.fixture
def config() -> ModelConfig:
    return ModelConfig.square(side=40, horizon=3, tau=0.45)


class TestEstimator:
    def test_high_concentration_probability(self, config):
        estimate = estimate_subneighborhood_concentration(
            config, gamma=0.25, n_samples=300, seed=0
        )
        # Proposition 1: the deviation stays inside the N^{1/2+eps} window with
        # overwhelming probability.
        assert estimate.concentration_probability > 0.9

    def test_sample_count_respected(self, config):
        estimate = estimate_subneighborhood_concentration(
            config, gamma=0.25, n_samples=50, seed=1
        )
        assert estimate.n_samples == 50
        assert estimate.deviations.shape == (50,)

    def test_mean_deviation_smaller_than_window(self, config):
        estimate = estimate_subneighborhood_concentration(
            config, gamma=0.3, n_samples=200, seed=2
        )
        assert estimate.mean_deviation < estimate.window

    def test_deviation_scales_with_gamma(self, config):
        small = estimate_subneighborhood_concentration(
            config, gamma=0.1, n_samples=300, seed=3
        )
        large = estimate_subneighborhood_concentration(
            config, gamma=0.9, n_samples=300, seed=3
        )
        # Both sub-neighbourhood sizes concentrate; deviations stay comparable
        # and bounded by the window in both cases.
        assert small.mean_deviation < small.window
        assert large.mean_deviation < large.window

    def test_rejection_counted(self, config):
        estimate = estimate_subneighborhood_concentration(
            config, gamma=0.25, n_samples=100, seed=4
        )
        # With tau = 0.45 the conditioning event has sizeable probability but
        # rejections do occur.
        assert estimate.n_rejected >= 0

    def test_invalid_gamma_rejected(self, config):
        with pytest.raises(AnalysisError):
            estimate_subneighborhood_concentration(config, gamma=0.0, n_samples=10)
        with pytest.raises(AnalysisError):
            estimate_subneighborhood_concentration(config, gamma=1.0, n_samples=10)

    def test_invalid_sample_count_rejected(self, config):
        with pytest.raises(AnalysisError):
            estimate_subneighborhood_concentration(config, gamma=0.25, n_samples=0)

    def test_impossible_conditioning_raises(self):
        # tau so small that W < tau N essentially never happens.
        config = ModelConfig.square(side=40, horizon=3, tau=0.02)
        with pytest.raises(AnalysisError):
            estimate_subneighborhood_concentration(
                config, gamma=0.25, n_samples=5, max_attempts_factor=2, seed=5
            )
