"""LRU answer-cache unit tests: eviction order, exact counters, thread hammer."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.serving.cache import (
    DEFAULT_CACHE_CAPACITY,
    LRUCache,
    cache_key,
    make_query_cache,
)


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                LRUCache(bad)

    def test_rejects_non_int_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(2.5)

    def test_make_query_cache_default_capacity(self):
        assert make_query_cache().capacity == DEFAULT_CACHE_CAPACITY
        assert make_query_cache(3).capacity == 3


class TestEviction:
    def test_evicts_least_recently_used_in_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.put("d", "D")  # evicts a
        assert "a" not in cache
        assert cache.keys() == ["b", "c", "d"]
        cache.put("e", "E")  # evicts b
        assert cache.keys() == ["c", "d", "e"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        assert cache.get("a") == "a"  # a is now most recent
        cache.put("d", "d")  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, not insert
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 0
        cache.put("c", 3)  # evicts b (a was refreshed by the update)
        assert cache.keys() == ["a", "c"]

    def test_peek_and_contains_do_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert "a" in cache
        cache.put("c", 3)  # a is still least recent -> evicted
        assert "a" not in cache

    def test_capacity_one(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.keys() == ["b"]
        assert cache.stats()["evictions"] == 1


class TestCounters:
    def test_every_get_is_exactly_one_hit_or_miss(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("zz") is None
        assert cache.get("zz", default=7) == 7
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["hits"] + stats["misses"] == 3

    def test_evictions_counted_exactly(self):
        cache = LRUCache(2)
        for i in range(10):
            cache.put(i, i)
        assert cache.stats()["evictions"] == 8
        assert cache.stats()["size"] == 2

    def test_peek_contains_len_do_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.peek("a")
        cache.peek("missing")
        "a" in cache  # noqa: B015 - observational on purpose
        len(cache)
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_clear_preserves_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(2)
        cache.put("a", None)
        assert cache.get("a", default="sentinel") is None
        assert cache.stats()["hits"] == 1


class TestGetOrCompute:
    def test_computes_once_then_hits(self):
        cache = LRUCache(4)
        calls = []
        value, was_hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, was_hit) == (42, False)
        value, was_hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, was_hit) == (42, True)
        assert len(calls) == 1

    def test_compute_exception_caches_nothing(self):
        cache = LRUCache(4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert "k" not in cache
        # the failed lookup still counted its miss; a later success caches
        value, was_hit = cache.get_or_compute("k", lambda: 1)
        assert (value, was_hit) == (1, False)


class TestThreadSafety:
    def test_concurrent_hammer_keeps_exact_accounting(self):
        """Hammer one small cache from many threads; invariants must hold.

        Every ``get`` classifies as exactly one hit or miss, occupancy never
        exceeds capacity, and the structure survives concurrent eviction
        churn without losing entries it should hold.
        """
        cache = LRUCache(8)
        n_threads, n_ops = 8, 400
        barrier = threading.Barrier(n_threads)

        def worker(worker_index):
            barrier.wait()
            for op in range(n_ops):
                key = (worker_index * op) % 16
                if op % 3 == 0:
                    cache.put(key, (worker_index, op))
                else:
                    cache.get(key)
                assert len(cache) <= 8

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        stats = cache.stats()
        expected_gets = n_threads * sum(1 for op in range(n_ops) if op % 3)
        assert stats["hits"] + stats["misses"] == expected_gets
        assert stats["size"] == len(cache.keys()) <= 8

    def test_concurrent_get_or_compute_returns_consistent_values(self):
        cache = LRUCache(64)
        compute_calls = []

        def compute_for(key):
            def compute():
                compute_calls.append(key)
                return key * 2
            return compute

        def worker(_):
            results = []
            for key in range(16):
                value, _ = cache.get_or_compute(key, compute_for(key))
                results.append(value == key * 2)
            return all(results)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(worker, range(8)))
        assert all(outcomes)
        # racing readers may duplicate computes, but never corrupt values
        assert len(compute_calls) >= 16
        for key in range(16):
            assert cache.peek(key) == key * 2


class TestCacheKey:
    def test_order_insensitive_and_interpolation_sensitive(self):
        a = cache_key({"rho": 0.4, "tau": 0.5, "w": 2.0}, False)
        b = cache_key({"w": 2.0, "tau": 0.5, "rho": 0.4}, False)
        assert a == b
        assert cache_key({"rho": 0.4, "tau": 0.5, "w": 2.0}, True) != a

    def test_usable_as_dict_key(self):
        key = cache_key({"rho": 0.4}, True)
        assert {key: 1}[key] == 1
