"""LRU answer-cache unit tests: eviction order, exact counters, thread hammer."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.serving.cache import (
    DEFAULT_CACHE_CAPACITY,
    LRUCache,
    cache_key,
    make_query_cache,
)


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                LRUCache(bad)

    def test_rejects_non_int_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(2.5)

    def test_make_query_cache_default_capacity(self):
        assert make_query_cache().capacity == DEFAULT_CACHE_CAPACITY
        assert make_query_cache(3).capacity == 3


class TestEviction:
    def test_evicts_least_recently_used_in_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.put("d", "D")  # evicts a
        assert "a" not in cache
        assert cache.keys() == ["b", "c", "d"]
        cache.put("e", "E")  # evicts b
        assert cache.keys() == ["c", "d", "e"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        assert cache.get("a") == "a"  # a is now most recent
        cache.put("d", "d")  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, not insert
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 0
        cache.put("c", 3)  # evicts b (a was refreshed by the update)
        assert cache.keys() == ["a", "c"]

    def test_peek_and_contains_do_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert "a" in cache
        cache.put("c", 3)  # a is still least recent -> evicted
        assert "a" not in cache

    def test_capacity_one(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.keys() == ["b"]
        assert cache.stats()["evictions"] == 1


class TestCounters:
    def test_every_get_is_exactly_one_hit_or_miss(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("zz") is None
        assert cache.get("zz", default=7) == 7
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["hits"] + stats["misses"] == 3

    def test_evictions_counted_exactly(self):
        cache = LRUCache(2)
        for i in range(10):
            cache.put(i, i)
        assert cache.stats()["evictions"] == 8
        assert cache.stats()["size"] == 2

    def test_peek_contains_len_do_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.peek("a")
        cache.peek("missing")
        "a" in cache  # noqa: B015 - observational on purpose
        len(cache)
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_clear_preserves_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(2)
        cache.put("a", None)
        assert cache.get("a", default="sentinel") is None
        assert cache.stats()["hits"] == 1


class TestGetOrCompute:
    def test_computes_once_then_hits(self):
        cache = LRUCache(4)
        calls = []
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, outcome) == (42, "miss")
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, outcome) == (42, "hit")
        assert len(calls) == 1

    def test_compute_exception_caches_nothing(self):
        cache = LRUCache(4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert "k" not in cache
        # the failed lookup still counted its miss; a later success caches
        value, outcome = cache.get_or_compute("k", lambda: 1)
        assert (value, outcome) == (1, "miss")

    def test_stats_expose_inflight_and_coalesced(self):
        cache = LRUCache(4)
        stats = cache.stats()
        assert stats["inflight"] == 0 and stats["coalesced"] == 0
        cache.get_or_compute("k", lambda: 1)
        assert cache.stats()["inflight"] == 0  # flight retired on success


class TestThreadSafety:
    def test_concurrent_hammer_keeps_exact_accounting(self):
        """Hammer one small cache from many threads; invariants must hold.

        Every ``get`` classifies as exactly one hit or miss, occupancy never
        exceeds capacity, and the structure survives concurrent eviction
        churn without losing entries it should hold.
        """
        cache = LRUCache(8)
        n_threads, n_ops = 8, 400
        barrier = threading.Barrier(n_threads)

        def worker(worker_index):
            barrier.wait()
            for op in range(n_ops):
                key = (worker_index * op) % 16
                if op % 3 == 0:
                    cache.put(key, (worker_index, op))
                else:
                    cache.get(key)
                assert len(cache) <= 8

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        stats = cache.stats()
        expected_gets = n_threads * sum(1 for op in range(n_ops) if op % 3)
        assert stats["hits"] + stats["misses"] == expected_gets
        assert stats["size"] == len(cache.keys()) <= 8

    def test_concurrent_get_or_compute_returns_consistent_values(self):
        cache = LRUCache(64)
        compute_calls = []
        lock = threading.Lock()

        def compute_for(key):
            def compute():
                with lock:
                    compute_calls.append(key)
                return key * 2
            return compute

        def worker(_):
            results = []
            for key in range(16):
                value, _ = cache.get_or_compute(key, compute_for(key))
                results.append(value == key * 2)
            return all(results)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(worker, range(8)))
        assert all(outcomes)
        # single-flight: each key computes exactly once across all threads
        assert sorted(compute_calls) == list(range(16))
        for key in range(16):
            assert cache.peek(key) == key * 2


class TestSingleFlight:
    def test_hammer_runs_exactly_one_compute(self):
        """16 threads miss one key at once: 1 compute, identical answers.

        The leader counts the sole miss; every other thread is coalesced
        onto the leader's flight and receives the same object.
        """
        cache = LRUCache(8)
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        release = threading.Event()
        compute_calls = []
        call_lock = threading.Lock()

        def compute():
            with call_lock:
                compute_calls.append(1)
            # hold the flight open until every thread has joined it
            release.wait(timeout=10)
            return {"answer": 42}

        def worker(_):
            barrier.wait()
            return cache.get_or_compute("hot", compute)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [pool.submit(worker, i) for i in range(n_threads)]
            # let followers pile onto the in-flight computation
            while cache.stats()["inflight"] == 0:
                pass
            release.set()
            results = [future.result(timeout=30) for future in futures]

        assert len(compute_calls) == 1
        values = [value for value, _ in results]
        assert all(value is values[0] for value in values)
        outcomes = [outcome for _, outcome in results]
        stats = cache.stats()
        assert outcomes.count("miss") == 1
        assert stats["misses"] == 1
        assert stats["coalesced"] == outcomes.count("coalesced")
        assert (
            outcomes.count("miss")
            + outcomes.count("coalesced")
            + outcomes.count("hit")
            == n_threads
        )
        assert stats["inflight"] == 0

    def test_leader_exception_propagates_to_followers(self):
        cache = LRUCache(8)
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        release = threading.Event()

        def compute():
            release.wait(timeout=10)
            raise RuntimeError("leader failed")

        def worker(_):
            barrier.wait()
            try:
                return cache.get_or_compute("k", compute)
            except RuntimeError as exc:
                return str(exc)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [pool.submit(worker, i) for i in range(n_threads)]
            while cache.stats()["inflight"] == 0:
                pass
            release.set()
            results = [future.result(timeout=30) for future in futures]

        assert results == ["leader failed"] * n_threads
        assert "k" not in cache
        # the failed flight is retired: the next call is a fresh leader
        value, outcome = cache.get_or_compute("k", lambda: 7)
        assert (value, outcome) == (7, "miss")

    def test_follower_deadline_raises_deadline_exceeded(self):
        from repro.errors import DeadlineExceeded

        cache = LRUCache(8)
        leader_started = threading.Event()
        release = threading.Event()

        def slow_compute():
            leader_started.set()
            release.wait(timeout=10)
            return "slow"

        with ThreadPoolExecutor(max_workers=1) as pool:
            leader = pool.submit(cache.get_or_compute, "k", slow_compute)
            assert leader_started.wait(timeout=10)
            with pytest.raises(DeadlineExceeded):
                cache.get_or_compute("k", lambda: "fast", timeout=0.05)
            release.set()
            assert leader.result(timeout=30) == ("slow", "miss")
        # the leader's answer landed despite the follower's timeout
        assert cache.peek("k") == "slow"


class TestCacheKey:
    def test_order_insensitive_and_interpolation_sensitive(self):
        a = cache_key({"rho": 0.4, "tau": 0.5, "w": 2.0}, False)
        b = cache_key({"w": 2.0, "tau": 0.5, "rho": 0.4}, False)
        assert a == b
        assert cache_key({"rho": 0.4, "tau": 0.5, "w": 2.0}, True) != a

    def test_usable_as_dict_key(self):
        key = cache_key({"rho": 0.4}, True)
        assert {key: 1}[key] == 1

    def test_generation_isolates_snapshots(self):
        """Keys from different store generations never collide.

        A refreshed snapshot bumps the generation, so entries cached
        against the superseded snapshot can never answer for the new one.
        """
        point = {"rho": 0.4, "tau": 0.5}
        assert cache_key(point, False, generation=0) != cache_key(
            point, False, generation=1
        )
        assert cache_key(point, False) == cache_key(point, False, generation=0)
