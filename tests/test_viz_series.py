"""Tests for CSV and markdown table rendering."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.viz.series import render_markdown_table, write_csv


ROWS = [
    {"tau": 0.45, "size": 12.5, "regime": "mono"},
    {"tau": 0.40, "size": 30.25, "regime": "almost"},
]


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "rows.csv")
        with open(path, newline="") as handle:
            read_back = list(csv.DictReader(handle))
        assert len(read_back) == 2
        assert read_back[0]["regime"] == "mono"
        assert float(read_back[1]["tau"]) == pytest.approx(0.40)

    def test_ragged_rows_filled_with_blank(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = write_csv(rows, tmp_path / "ragged.csv")
        with open(path, newline="") as handle:
            read_back = list(csv.DictReader(handle))
        assert read_back[0]["b"] == ""
        assert read_back[1]["b"] == "3"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_csv([], tmp_path / "empty.csv")


class TestMarkdown:
    def test_structure(self):
        table = render_markdown_table(ROWS)
        lines = table.splitlines()
        assert lines[0].startswith("| tau | size | regime |")
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert len(lines) == 4

    def test_float_formatting(self):
        table = render_markdown_table([{"x": 0.123456789}], float_format=".2f")
        assert "0.12" in table

    def test_bools_rendered_as_text(self):
        table = render_markdown_table([{"ok": True}])
        assert "True" in table

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_markdown_table([])

    def test_missing_cells_blank(self):
        table = render_markdown_table([{"a": 1}, {"b": 2}])
        assert "| 1 |  |" in table
