"""Checkpoint/resume tests: spec hashing, artifact layout, resumed tables."""

import json

import pytest

from repro.core.config import ModelConfig
from repro.core.variants import VariantSpec
from repro.errors import ExperimentError
from repro.experiments.checkpoint import (
    MANIFEST_FORMAT,
    SweepCheckpoint,
)
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.runner import run_sweep
from repro.experiments.spec import ExperimentSpec, SweepSpec, spec_hash

TIMING_COLUMNS = {"wall_clock_seconds"}


def comparable_rows(table):
    """The table's rows with the timing columns stripped."""
    return [
        {key: value for key, value in row.items() if key not in TIMING_COLUMNS}
        for row in table.rows
    ]


@pytest.fixture
def small_sweep() -> SweepSpec:
    """A 2 x 2 x 2 sweep (taus x densities x replicates) of small cells."""
    base = ModelConfig.square(side=18, horizon=1, tau=0.4)
    return SweepSpec(
        name="checkpoint-unit",
        base_config=base,
        taus=[0.35, 0.45],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=13,
    )


def _cell(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="cell",
        config=ModelConfig.square(side=12, horizon=1, tau=0.4),
        n_replicates=2,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSpecHash:
    def test_equal_specs_hash_equal(self):
        assert spec_hash(_cell()) == spec_hash(_cell())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": "other"},
            {"seed": 8},
            {"n_replicates": 3},
            {"max_flips": 100},
            {"max_steps": 100},
            {"max_region_radius": 2},
            {"record_trajectory": True},
            {"record_every": 7},
            {"config": ModelConfig.square(side=12, horizon=1, tau=0.45)},
            {
                "variant": VariantSpec.two_sided(0.9),
                "max_steps": 50,
            },
        ],
    )
    def test_any_row_determining_change_changes_hash(self, overrides):
        assert spec_hash(_cell(**overrides)) != spec_hash(_cell())

    def test_hash_is_hex_sha256(self):
        digest = spec_hash(_cell())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_sweep_cells_hash_uniquely(self, small_sweep):
        hashes = [spec_hash(cell) for cell in small_sweep.cells()]
        assert len(set(hashes)) == len(hashes)


class TestArtifactLayout:
    def test_manifest_written_with_provenance(self, small_sweep, tmp_path):
        cells = list(small_sweep.cells())
        SweepCheckpoint(tmp_path, cells, sweep=small_sweep)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["n_cells"] == len(cells)
        assert [entry["name"] for entry in manifest["cells"]] == [
            cell.name for cell in cells
        ]
        assert [entry["spec_hash"] for entry in manifest["cells"]] == [
            spec_hash(cell) for cell in cells
        ]
        assert manifest["sweep"]["name"] == small_sweep.name
        assert manifest["library_version"]
        assert manifest["python"]
        assert manifest["numpy"]

    def test_metrics_streamed_in_cell_order(self, small_sweep, tmp_path):
        run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        records = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert [record["cell_index"] for record in records] == list(
            range(len(records))
        )
        assert len(records) == small_sweep.n_cells()
        cells = list(small_sweep.cells())
        for record in records:
            assert record["spec_hash"] == spec_hash(cells[record["cell_index"]])
            assert len(record["rows"]) == small_sweep.n_replicates

    def test_foreign_manifest_refused(self, small_sweep, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)

    def test_corrupt_manifest_refused(self, small_sweep, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ExperimentError):
            run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)


class TestResume:
    def _count_runs(self, monkeypatch):
        """Patch the cell runner with a call counter (inline path only)."""
        import repro.experiments.runner as runner_module

        calls = []
        original = runner_module.run_experiment

        def counting(spec, ensemble_size=None, backend=None):
            calls.append(spec.name)
            return original(spec, ensemble_size=ensemble_size, backend=backend)

        monkeypatch.setattr(runner_module, "run_experiment", counting)
        return calls

    def test_completed_run_resumes_without_recomputing(
        self, small_sweep, tmp_path, monkeypatch
    ):
        first = run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        calls = self._count_runs(monkeypatch)
        second = run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        assert calls == []  # every cell came from the checkpoint
        # Resumed rows are the recorded ones verbatim — wall clock included.
        assert second.rows == first.rows

    def test_interrupted_run_resumes_into_identical_table(
        self, small_sweep, tmp_path, monkeypatch
    ):
        class Interrupted(RuntimeError):
            pass

        seen = []

        def interrupt_after_three(cell):
            seen.append(cell.name)
            if len(seen) == 3:
                raise Interrupted("simulated kill")

        with pytest.raises(Interrupted):
            run_sweep_parallel(
                small_sweep,
                workers=2,
                chunk_size=1,
                checkpoint_dir=tmp_path,
                progress=interrupt_after_three,
            )
        recorded = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert 0 < len(recorded) < small_sweep.n_cells()

        calls = self._count_runs(monkeypatch)
        resumed = run_sweep_parallel(
            small_sweep, workers=1, checkpoint_dir=tmp_path
        )
        assert len(calls) == small_sweep.n_cells() - len(recorded)
        assert comparable_rows(resumed) == comparable_rows(run_sweep(small_sweep))

    def test_torn_trailing_line_is_skipped(self, small_sweep, tmp_path, monkeypatch):
        run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        metrics = tmp_path / "metrics.jsonl"
        lines = metrics.read_text().splitlines()
        torn = lines[-1][: len(lines[-1]) // 2]  # a kill mid-append
        metrics.write_text("\n".join(lines[:-1]) + "\n" + torn)

        calls = self._count_runs(monkeypatch)
        resumed = run_sweep_parallel(
            small_sweep, workers=1, checkpoint_dir=tmp_path
        )
        assert len(calls) == 1  # only the torn cell reruns
        assert comparable_rows(resumed) == comparable_rows(run_sweep(small_sweep))

    def test_record_after_torn_tail_does_not_corrupt_log(
        self, small_sweep, tmp_path, monkeypatch
    ):
        """Resuming over a torn tail must leave a log that still resumes."""
        run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        metrics = tmp_path / "metrics.jsonl"
        lines = metrics.read_text().splitlines()
        # A kill mid-append leaves an unterminated fragment at the end.
        metrics.write_text("\n".join(lines[:2]) + "\n" + lines[2][:40])

        run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        parsed = 0
        for line in metrics.read_text().splitlines():
            try:
                json.loads(line)
                parsed += 1
            except ValueError:
                continue  # the fragment itself stays, terminated
        assert parsed == small_sweep.n_cells()

        calls = self._count_runs(monkeypatch)
        final = run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        assert calls == []  # every record (including post-fragment) loads
        assert comparable_rows(final) == comparable_rows(run_sweep(small_sweep))

    def test_parameter_change_invalidates_records(
        self, small_sweep, tmp_path, monkeypatch
    ):
        run_sweep_parallel(small_sweep, workers=1, checkpoint_dir=tmp_path)
        reseeded = SweepSpec(
            name=small_sweep.name,
            base_config=small_sweep.base_config,
            taus=small_sweep.taus,
            densities=small_sweep.densities,
            n_replicates=small_sweep.n_replicates,
            seed=small_sweep.seed + 1,
        )
        calls = self._count_runs(monkeypatch)
        resumed = run_sweep_parallel(reseeded, workers=1, checkpoint_dir=tmp_path)
        assert len(calls) == reseeded.n_cells()  # nothing matched, all rerun
        assert comparable_rows(resumed) == comparable_rows(run_sweep(reseeded))

    def test_resume_composes_with_pool_and_ensemble(self, small_sweep, tmp_path):
        interrupted = 0

        def interrupt_after_two(cell):
            nonlocal interrupted
            interrupted += 1
            if interrupted == 2:
                raise RuntimeError("simulated kill")

        with pytest.raises(RuntimeError):
            run_sweep_parallel(
                small_sweep,
                workers=2,
                chunk_size=1,
                checkpoint_dir=tmp_path,
                progress=interrupt_after_two,
            )
        resumed = run_sweep_parallel(
            small_sweep, workers=2, ensemble_size=2, checkpoint_dir=tmp_path
        )
        assert comparable_rows(resumed) == comparable_rows(run_sweep(small_sweep))

    def test_run_sweep_delegates_checkpointing(self, small_sweep, tmp_path):
        table = run_sweep(small_sweep, checkpoint_dir=tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "metrics.jsonl").exists()
        assert comparable_rows(table) == comparable_rows(run_sweep(small_sweep))
