"""The flip-loop backend seam: registry, selection, bitwise identity, provenance.

Four layers are pinned here:

* **Registry** — capability probing, the CLI > env > spec > auto selection
  precedence, the single-warning numpy fallback for unavailable backends,
  and the hard error for unknown names.
* **Bitwise identity** — every available backend advances the ensemble
  engine *bit for bit* like the numpy reference: spins, clocks, step/flip
  counters, energies and the samplers' packed layouts, across the base,
  two-sided and asymmetric rules, with a tiny RNG block size so the refill
  and ziggurat slow paths (the event-servicing seam) fire constantly.
* **Rows** — :func:`run_experiment` produces identical rows (up to wall
  clock) under every backend, so recorded sweeps are backend-invariant.
* **Provenance** — checkpointed sweeps stamp the resolved backend into the
  manifest and each record, and ``reproduce_store`` turns a row mismatch
  whose record names a *different* backend into the ``backend-drift``
  diagnostic instead of a bare ``mismatch``.

Numba-only paths skip with a reason on hosts without numba — they must
never fail.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.backends import kernels
from repro.core.backends.numba_backend import numba_available
from repro.core.backends.registry import (
    AUTO_PREFERENCE,
    KNOWN_BACKENDS,
    available_backends,
    create_backend,
    default_backend_name,
    resolve_backend_name,
    select_backend_name,
)
from repro.core.backends import registry as registry_module
from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics, ReferenceEnsembleDynamics
from repro.core.variants import AsymmetricEnsemble, TwoSidedEnsemble
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiment, run_sweep
from repro.experiments.spec import ExperimentSpec, SweepSpec

BACKENDS = available_backends()
SMALL = ModelConfig.square(side=16, horizon=1, tau=0.45)


def _engine_state(engine):
    """Everything a backend could corrupt, as one comparable bundle."""
    layouts = [
        engine._sets.packed_members(row)
        for row in range(2 * engine.n_replicas)
    ]
    return (
        engine.spins,
        engine.times,
        engine.n_steps,
        engine.n_flips,
        engine.energies(),
        engine.unhappy_counts(),
        engine.flippable_counts(),
        layouts,
    )


def _assert_states_equal(reference, actual):
    *ref_arrays, ref_layouts = reference
    *act_arrays, act_layouts = actual
    for ref, act in zip(ref_arrays, act_arrays):
        np.testing.assert_array_equal(ref, act)
    for ref, act in zip(ref_layouts, act_layouts):
        np.testing.assert_array_equal(ref, act)


def _run_rounds(engine, rounds=120):
    for _ in range(rounds):
        engine.step_all()


class TestRegistry:
    def test_numpy_and_python_always_available(self):
        assert BACKENDS[0] == "numpy"
        assert BACKENDS[-1] == "python"
        assert set(BACKENDS) <= set(KNOWN_BACKENDS)

    def test_default_backend_is_available_and_never_python(self):
        default = default_backend_name()
        assert default in BACKENDS
        assert default != "python"

    def test_auto_prefers_compiled_backends(self):
        # The fastest available backend in preference order wins auto.
        expected = next(
            (name for name in AUTO_PREFERENCE if name in BACKENDS), "numpy"
        )
        assert default_backend_name() == expected

    def test_selection_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert select_backend_name(None, None) == "auto"
        assert select_backend_name(None, "python") == "python"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert select_backend_name(None, "python") == "numpy"
        assert select_backend_name("cffi", "python") == "cffi"
        # Empty strings count as unset at every level.
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert select_backend_name("", "") == "auto"

    def test_resolve_auto_and_concrete(self):
        assert resolve_backend_name(None) == default_backend_name()
        assert resolve_backend_name("auto") == default_backend_name()
        assert resolve_backend_name("numpy") == "numpy"
        assert resolve_backend_name("python") == "python"

    def test_unknown_backend_is_a_hard_error(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend_name("fortran")

    def test_unavailable_backend_degrades_with_one_warning(self, monkeypatch):
        unavailable = [
            name
            for name in ("numba", "cffi")
            if name not in BACKENDS
        ]
        if not unavailable:
            pytest.skip("every known backend is available on this host")
        name = unavailable[0]
        monkeypatch.setattr(registry_module, "_warned_fallbacks", set())
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            assert resolve_backend_name(name) == "numpy"
        # Second request: same fallback, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend_name(name) == "numpy"

    def test_requesting_numba_never_raises(self, monkeypatch):
        """--backend numba on a numba-less host degrades, never explodes."""
        monkeypatch.setattr(registry_module, "_warned_fallbacks", set())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resolved = resolve_backend_name("numba")
        assert resolved in ("numba", "numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            engine = EnsembleDynamics(
                SMALL, n_replicas=2, seed=0, backend="numba"
            )
        assert engine.backend_name in ("numba", "numpy")

    def test_create_backend_returns_fresh_instances(self):
        first = create_backend("numpy")
        second = create_backend("numpy")
        assert first is not second
        assert first.name == "numpy"


class TestEngineSeam:
    def test_engine_reports_backend_name(self):
        engine = EnsembleDynamics(SMALL, n_replicas=2, seed=0)
        assert engine.backend_name == default_backend_name()
        explicit = EnsembleDynamics(
            SMALL, n_replicas=2, seed=0, backend="numpy"
        )
        assert explicit.backend_name == "numpy"

    def test_reference_engine_has_no_backend(self):
        engine = ReferenceEnsembleDynamics(SMALL, n_replicas=2, seed=0)
        assert engine.backend_name == "reference"


@pytest.mark.parametrize("backend_name", [b for b in BACKENDS if b != "numpy"])
class TestBitwiseIdentity:
    """Every backend must match the numpy reference bit for bit."""

    def _compare(self, backend_name, factory, rounds=120):
        reference = factory(backend="numpy")
        actual = factory(backend=backend_name)
        _run_rounds(reference, rounds)
        _run_rounds(actual, rounds)
        _assert_states_equal(_engine_state(reference), _engine_state(actual))

    @pytest.mark.parametrize("block_words", [1, 7, 4096])
    def test_base_rule(self, backend_name, block_words):
        # block_words=1 forces a refill on every word and exercises the
        # event-servicing resume protocol on essentially every draw.
        self._compare(
            backend_name,
            lambda backend: EnsembleDynamics(
                SMALL,
                n_replicas=3,
                seed=7,
                rng_block_words=block_words,
                backend=backend,
            ),
        )

    def test_two_sided_rule(self, backend_name):
        self._compare(
            backend_name,
            lambda backend: TwoSidedEnsemble(
                SMALL,
                tau_high=0.8,
                n_replicas=3,
                seed=11,
                rng_block_words=7,
                backend=backend,
            ),
        )

    def test_asymmetric_rule(self, backend_name):
        self._compare(
            backend_name,
            lambda backend: AsymmetricEnsemble(
                SMALL,
                tau_minus=0.35,
                n_replicas=3,
                seed=13,
                rng_block_words=7,
                backend=backend,
            ),
        )

    def test_run_to_termination(self, backend_name):
        reference = EnsembleDynamics(
            SMALL, n_replicas=2, seed=5, backend="numpy"
        )
        actual = EnsembleDynamics(
            SMALL, n_replicas=2, seed=5, backend=backend_name
        )
        ref_result = reference.run()
        act_result = actual.run()
        np.testing.assert_array_equal(
            ref_result.final_spins, act_result.final_spins
        )
        np.testing.assert_array_equal(ref_result.n_flips, act_result.n_flips)
        np.testing.assert_array_equal(
            ref_result.final_time, act_result.final_time
        )
        assert ref_result.all_terminated and act_result.all_terminated

    def test_experiment_rows_are_backend_invariant(self, backend_name):
        spec = ExperimentSpec(
            name="cell", config=SMALL, n_replicates=3, seed=21
        )
        reference = run_experiment(spec, ensemble_size=3, backend="numpy").rows
        actual = run_experiment(
            spec, ensemble_size=3, backend=backend_name
        ).rows
        assert len(reference) == len(actual)
        for ref_row, act_row in zip(reference, actual):
            for key, value in ref_row.items():
                if key == "wall_clock_seconds":
                    continue
                assert act_row[key] == value, f"{key} differs"


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaBackend:
    """Compiled-kernel checks that only run where numba is importable."""

    def test_compiled_kernels_are_memoized(self):
        from repro.core.backends.numba_backend import compiled_kernels

        assert compiled_kernels() is compiled_kernels()

    def test_numba_listed_and_preferred(self):
        assert "numba" in BACKENDS
        assert default_backend_name() == "numba"


class TestKernelConstants:
    def test_status_codes_are_distinct(self):
        codes = {
            kernels.STATUS_DONE,
            kernels.STATUS_REFILL_START,
            kernels.STATUS_ZIGGURAT_SLOW,
            kernels.STATUS_REFILL_CANDIDATE,
        }
        assert len(codes) == 4


class TestSweepProvenance:
    def _sweep(self):
        return SweepSpec(
            name="prov",
            base_config=SMALL,
            taus=(0.4, 0.5),
            n_replicates=2,
            seed=3,
        )

    def test_manifest_and_records_carry_backend(self, tmp_path):
        run_sweep(
            self._sweep(),
            ensemble_size=2,
            checkpoint_dir=str(tmp_path),
            backend="numpy",
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["backend"] == "numpy"
        records = [
            json.loads(line)
            for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
        ]
        assert records and all(r["backend"] == "numpy" for r in records)

    def test_scalar_sweep_records_scalar(self, tmp_path):
        run_sweep(self._sweep(), checkpoint_dir=str(tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["backend"] == "scalar"

    def test_spec_hash_ignores_backend(self):
        from repro.experiments.spec import spec_hash

        plain = ExperimentSpec(name="cell", config=SMALL, seed=1)
        pinned = ExperimentSpec(
            name="cell", config=SMALL, seed=1, backend="cffi"
        )
        assert spec_hash(plain) == spec_hash(pinned)

    def test_resume_across_backends(self, tmp_path):
        """A store written by one backend resumes under another unchanged."""
        first = run_sweep(
            self._sweep(),
            ensemble_size=2,
            checkpoint_dir=str(tmp_path),
            backend="numpy",
        )
        second = run_sweep(
            self._sweep(),
            ensemble_size=2,
            checkpoint_dir=str(tmp_path),
            backend=default_backend_name(),
        )
        assert second.rows == first.rows


class TestReproduceBackendDrift:
    def _store(self, tmp_path, backend):
        run_sweep(
            SweepSpec(
                name="drift",
                base_config=SMALL,
                taus=(0.45,),
                n_replicates=2,
                seed=9,
            ),
            ensemble_size=2,
            checkpoint_dir=str(tmp_path),
            backend=backend,
        )

    def _tamper_rows(self, tmp_path):
        """Corrupt one recorded metric, re-encoding the CRC so it loads."""
        from repro.experiments.checkpoint import encode_record_line

        metrics = tmp_path / "metrics.jsonl"
        lines = metrics.read_text().splitlines()
        record = json.loads(lines[0])
        record.pop("crc32")
        record["rows"][0]["n_flips"] = int(record["rows"][0]["n_flips"]) + 1
        lines[0] = encode_record_line(record).decode("utf-8").rstrip("\n")
        metrics.write_text("\n".join(lines) + "\n")

    def test_matching_rows_match_under_any_backend(self, tmp_path):
        from repro.serving.store import reproduce_store

        self._store(tmp_path, backend="numpy")
        report = reproduce_store(
            tmp_path, ensemble_size=2, backend=default_backend_name()
        )
        assert report.ok
        assert report.counts() == {"match": 1}

    def test_mismatch_with_different_backend_is_named_drift(self, tmp_path):
        from repro.serving.store import reproduce_store

        self._store(tmp_path, backend="python")
        self._tamper_rows(tmp_path)
        report = reproduce_store(tmp_path, ensemble_size=2, backend="numpy")
        assert not report.ok
        assert report.counts() == {"backend-drift": 1}
        result = report.results[0]
        assert result.damaged
        assert "'python'" in result.detail and "'numpy'" in result.detail

    def test_mismatch_with_same_backend_stays_plain_mismatch(self, tmp_path):
        from repro.serving.store import reproduce_store

        self._store(tmp_path, backend="numpy")
        self._tamper_rows(tmp_path)
        report = reproduce_store(tmp_path, ensemble_size=2, backend="numpy")
        assert not report.ok
        assert report.counts() == {"mismatch": 1}
