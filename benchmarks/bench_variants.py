"""Extension ablation — model variants from Sections I.A and V.

The paper points out that its model is "naturally biased towards segregation"
because agents never flip when surrounded by too many of their own type, and
suggests the two-sided variant (uncomfortable as both minority and majority)
as further work; it also cites the per-type-intolerance model of Barmpalias et
al.  Neither variant has paper-side numbers, so these benchmarks record the
reproduction's own baseline: the two-sided band suppresses segregation
relative to the one-sided model, and the per-type model interpolates between
the static and segregating behaviours of its two thresholds.

``bench_variant_ensemble_vs_scalar_flips_per_second`` additionally backs the
PR 3 execution claim: variant rules run on the vectorized lockstep engine
(:class:`~repro.core.variants.TwoSidedEnsemble` /
:class:`~repro.core.variants.AsymmetricEnsemble`) with at least 3x the flip
throughput of sequential scalar variant runs of the same seeds.
``REPRO_BENCH_QUICK=1`` caps the flip budgets (same grids, same assertions)
so the file finishes well under 30 seconds.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.segregation import local_homogeneity
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import random_configuration
from repro.core.simulation import Simulation
from repro.core.state import ModelState
from repro.core.variants import AsymmetricModelState, TwoSidedModelState, VariantSpec
from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode

#: Acceptance floor for variant rules on the ensemble engine (R = 8).
MIN_VARIANT_ENSEMBLE_SPEEDUP = 3.0


def bench_two_sided_vs_one_sided(benchmark, emit):
    config = ModelConfig.square(side=48, horizon=2, tau=0.45)

    def run() -> ResultTable:
        table = ResultTable()
        for seed in range(3):
            grid = random_configuration(config, seed=seed)
            one_sided = ModelState(config, grid.copy())
            GlauberDynamics(one_sided, seed=seed).run()
            two_sided = TwoSidedModelState(config, tau_high=0.8, grid=grid.copy())
            GlauberDynamics(two_sided, seed=seed).run(max_steps=20 * config.n_sites)
            table.add_row(
                seed=seed,
                one_sided_homogeneity=local_homogeneity(one_sided.grid.spins, config.horizon),
                two_sided_homogeneity=local_homogeneity(two_sided.grid.spins, config.horizon),
                two_sided_unhappy=two_sided.n_unhappy,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("EXT_two_sided_variant", table, benchmark)

    one = table.numeric_column("one_sided_homogeneity")
    two = table.numeric_column("two_sided_homogeneity")
    # The comfort band caps how segregated a neighbourhood may become, so the
    # two-sided variant ends up less homogeneous than the paper's model.
    assert two.mean() <= one.mean()
    assert one.mean() > 0.8
    benchmark.extra_info["one_sided_mean"] = float(one.mean())
    benchmark.extra_info["two_sided_mean"] = float(two.mean())


def bench_asymmetric_intolerances(benchmark, emit):
    config = ModelConfig.square(side=48, horizon=2, tau=0.45)

    def run() -> ResultTable:
        table = ResultTable()
        for tau_minus in (0.20, 0.45):
            for seed in range(2):
                state = AsymmetricModelState(
                    config, tau_minus=tau_minus, grid=random_configuration(config, seed=seed)
                )
                result = GlauberDynamics(state, seed=seed).run(
                    max_steps=30 * config.n_sites
                )
                spins = state.grid.spins
                table.add_row(
                    tau_minus=tau_minus,
                    seed=seed,
                    n_flips=result.n_flips,
                    final_homogeneity=local_homogeneity(spins, config.horizon),
                    plus_fraction=float(np.mean(spins == 1)),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("EXT_asymmetric_intolerances", table, benchmark)

    by_tau: dict[float, list[float]] = {}
    for row in table:
        by_tau.setdefault(float(row["tau_minus"]), []).append(float(row["plus_fraction"]))
    # Tolerant -1 agents (tau_minus = 0.2) rarely flip, so the +1 population
    # grows less than in the symmetric case.
    assert np.mean(by_tau[0.20]) <= np.mean(by_tau[0.45]) + 0.05
    benchmark.extra_info["plus_fraction_by_tau_minus"] = {
        str(k): float(np.mean(v)) for k, v in by_tau.items()
    }


def bench_variant_ensemble_vs_scalar_flips_per_second(benchmark, emit):
    """R = 8 lockstep variant replicas vs 8 sequential scalar variant runs.

    Both variants run on the 128x128 / w=3 grid of the PR 1 throughput claim
    with the *same seeds* on both engines; flip counts are asserted equal, so
    the flips/sec comparison is work-for-work.  Variant rules carry no
    termination guarantee, hence every run gets a flip budget (capped much
    lower in quick mode).
    """
    config = ModelConfig.square(side=128, horizon=3, tau=0.45)
    n_replicas = 8
    max_flips = 1500 if quick_mode() else 20000
    variants = {
        "two_sided": VariantSpec.two_sided(0.8),
        "asymmetric": VariantSpec.asymmetric(0.35),
    }

    def time_ensemble(variant) -> tuple[int, float, tuple[int, ...]]:
        """Best-of-2 timing of a fresh lockstep run (identical work per round)."""
        flips, seconds, seeds = 0, float("inf"), ()
        for _ in range(2):
            ensemble = variant.make_ensemble(config, n_replicas=n_replicas, seed=7)
            start = time.perf_counter()
            result = ensemble.run(max_flips=max_flips)
            seconds = min(seconds, time.perf_counter() - start)
            flips, seeds = result.total_flips, ensemble.replica_seeds
        return flips, seconds, seeds

    def time_scalar(variant, seeds) -> tuple[int, float]:
        """Best-of-2 timing of the sequential scalar runs of the same seeds."""
        flips, seconds = 0, float("inf")
        for _ in range(2):
            start = time.perf_counter()
            flips = sum(
                Simulation(config, seed=seed, variant=variant)
                .run(max_flips=max_flips)
                .n_flips
                for seed in seeds
            )
            seconds = min(seconds, time.perf_counter() - start)
        return flips, seconds

    def run() -> ResultTable:
        table = ResultTable()
        for name, variant in variants.items():
            ensemble_flips, ensemble_seconds, seeds = time_ensemble(variant)
            scalar_flips, scalar_seconds = time_scalar(variant, seeds)
            assert scalar_flips == ensemble_flips, (
                f"{name}: engines disagree on total flips"
            )

            table.add_row(
                variant=name,
                engine="scalar x8",
                flips=scalar_flips,
                seconds=scalar_seconds,
                flips_per_second=scalar_flips / scalar_seconds,
            )
            table.add_row(
                variant=name,
                engine="ensemble R=8",
                flips=ensemble_flips,
                seconds=ensemble_seconds,
                flips_per_second=ensemble_flips / ensemble_seconds,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_variant_ensemble_throughput", table, benchmark)

    for name in variants:
        rates = [
            float(row["flips_per_second"])
            for row in table
            if row["variant"] == name
        ]
        speedup = rates[1] / rates[0]
        benchmark.extra_info[f"{name}_speedup"] = speedup
        assert speedup >= MIN_VARIANT_ENSEMBLE_SPEEDUP, (
            f"{name} ensemble speedup {speedup:.2f}x below the "
            f"{MIN_VARIANT_ENSEMBLE_SPEEDUP}x floor"
        )
    benchmark.extra_info["quick_mode"] = quick_mode()
    benchmark.extra_info["max_flips"] = max_flips
