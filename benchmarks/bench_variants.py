"""Extension ablation — model variants from Sections I.A and V.

The paper points out that its model is "naturally biased towards segregation"
because agents never flip when surrounded by too many of their own type, and
suggests the two-sided variant (uncomfortable as both minority and majority)
as further work; it also cites the per-type-intolerance model of Barmpalias et
al.  Neither variant has paper-side numbers, so these benchmarks record the
reproduction's own baseline: the two-sided band suppresses segregation
relative to the one-sided model, and the per-type model interpolates between
the static and segregating behaviours of its two thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.segregation import local_homogeneity
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import random_configuration
from repro.core.state import ModelState
from repro.core.variants import AsymmetricModelState, TwoSidedModelState
from repro.experiments.results import ResultTable


def bench_two_sided_vs_one_sided(benchmark, emit):
    config = ModelConfig.square(side=48, horizon=2, tau=0.45)

    def run() -> ResultTable:
        table = ResultTable()
        for seed in range(3):
            grid = random_configuration(config, seed=seed)
            one_sided = ModelState(config, grid.copy())
            GlauberDynamics(one_sided, seed=seed).run()
            two_sided = TwoSidedModelState(config, tau_high=0.8, grid=grid.copy())
            GlauberDynamics(two_sided, seed=seed).run(max_steps=20 * config.n_sites)
            table.add_row(
                seed=seed,
                one_sided_homogeneity=local_homogeneity(one_sided.grid.spins, config.horizon),
                two_sided_homogeneity=local_homogeneity(two_sided.grid.spins, config.horizon),
                two_sided_unhappy=two_sided.n_unhappy,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("EXT_two_sided_variant", table, benchmark)

    one = table.numeric_column("one_sided_homogeneity")
    two = table.numeric_column("two_sided_homogeneity")
    # The comfort band caps how segregated a neighbourhood may become, so the
    # two-sided variant ends up less homogeneous than the paper's model.
    assert two.mean() <= one.mean()
    assert one.mean() > 0.8
    benchmark.extra_info["one_sided_mean"] = float(one.mean())
    benchmark.extra_info["two_sided_mean"] = float(two.mean())


def bench_asymmetric_intolerances(benchmark, emit):
    config = ModelConfig.square(side=48, horizon=2, tau=0.45)

    def run() -> ResultTable:
        table = ResultTable()
        for tau_minus in (0.20, 0.45):
            for seed in range(2):
                state = AsymmetricModelState(
                    config, tau_minus=tau_minus, grid=random_configuration(config, seed=seed)
                )
                result = GlauberDynamics(state, seed=seed).run(
                    max_steps=30 * config.n_sites
                )
                spins = state.grid.spins
                table.add_row(
                    tau_minus=tau_minus,
                    seed=seed,
                    n_flips=result.n_flips,
                    final_homogeneity=local_homogeneity(spins, config.horizon),
                    plus_fraction=float(np.mean(spins == 1)),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("EXT_asymmetric_intolerances", table, benchmark)

    by_tau: dict[float, list[float]] = {}
    for row in table:
        by_tau.setdefault(float(row["tau_minus"]), []).append(float(row["plus_fraction"]))
    # Tolerant -1 agents (tau_minus = 0.2) rarely flip, so the +1 population
    # grows less than in the symmetric case.
    assert np.mean(by_tau[0.20]) <= np.mean(by_tau[0.45]) + 0.05
    benchmark.extra_info["plus_fraction_by_tau_minus"] = {
        str(k): float(np.mean(v)) for k, v in by_tau.items()
    }
