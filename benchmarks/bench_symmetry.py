"""E8 — symmetry of the model around tau = 1/2 (Section IV.C).

The paper extends every result from tau < 1/2 to tau > 1/2 through the
super-unhappy-agent argument.  The benchmark runs the model at tau and 1 - tau
on equally sized grids and checks that the resulting mean monochromatic
region sizes agree within a factor, which is the finite-size signature of the
symmetry.
"""

from __future__ import annotations

from repro.experiments import symmetry_experiment


def bench_symmetry_about_half(benchmark, emit):
    table = benchmark.pedantic(
        lambda: symmetry_experiment(
            horizon=2, taus_below_half=[0.40, 0.44, 0.47], n_replicates=3, seed=404
        ),
        rounds=1,
        iterations=1,
    )
    emit("E8_symmetry", table, benchmark)

    for row in table:
        ratio = float(row["ratio_above_over_below"])
        assert 0.3 < ratio < 3.0, (
            f"tau={row['tau']} and {row['mirrored_tau']} disagree by factor {ratio}"
        )
        benchmark.extra_info[f"ratio_tau_{row['tau']}"] = ratio
