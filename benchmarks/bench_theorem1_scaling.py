"""E5 — Theorem 1: E[M] grows exponentially in the neighbourhood size N.

Theorem 1 brackets the expected monochromatic-region size between 2^{aN} and
2^{bN} for tau in (tau1, 1/2).  Absolute constants are not reachable at
simulable horizons (the o(N) corrections dominate), so the benchmark checks
the shape: the measured mean region size grows with N at every tau in the
range, the fitted growth rate of log2(E[M]) against N is positive, and the
theoretical bracket a(tau) < b(tau) is reported next to it for comparison
(EXPERIMENTS.md discusses the gap).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import theorem1_scaling


def bench_theorem1_scaling(benchmark, emit):
    result = benchmark.pedantic(
        lambda: theorem1_scaling(
            taus=[0.44, 0.46, 0.48],
            horizons=[1, 2, 3],
            n_replicates=3,
            multiples=8,
            seed=101,
        ),
        rounds=1,
        iterations=1,
    )
    emit("E5_theorem1_measurements", result.measurements, benchmark)
    emit("E5_theorem1_fits", result.fits)

    for fit in result.fits:
        assert fit["measured_rate"] > 0, f"no exponential growth at tau={fit['tau']}"
        assert fit["theory_lower_rate"] < fit["theory_upper_rate"]
        benchmark.extra_info[f"rate_tau_{fit['tau']}"] = float(fit["measured_rate"])

    # Region sizes increase with the horizon for every tau in the range.
    for tau in {row["tau"] for row in result.measurements}:
        rows = [row for row in result.measurements if row["tau"] == tau]
        rows.sort(key=lambda row: row["neighborhood_agents"])
        sizes = [row["mean_region_size"] for row in rows]
        assert sizes[-1] > sizes[0]
