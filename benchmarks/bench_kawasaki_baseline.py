"""E14 — Glauber vs Kawasaki baseline (the two model classes of Section I.A).

Starting from the same Bernoulli(1/2) configurations, the paper's Glauber
dynamics (open system, single-agent flips) is compared with the Kawasaki
baseline (closed system, pair swaps).  The benchmark checks the structural
difference — Kawasaki conserves the magnetisation exactly, Glauber drifts —
and that both increase local homogeneity, with Glauber reaching the larger
monochromatic regions (its flips are strictly less constrained).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import kawasaki_comparison_experiment


def bench_kawasaki_vs_glauber(benchmark, emit):
    table = benchmark.pedantic(
        lambda: kawasaki_comparison_experiment(
            horizon=2, tau=0.45, n_replicates=3, seed=1401, kawasaki_max_proposals=15000
        ),
        rounds=1,
        iterations=1,
    )
    emit("E14_kawasaki_baseline", table, benchmark)

    for row in table:
        assert row["glauber_terminated"]
        # Kawasaki conserves the type balance exactly.
        assert abs(row["kawasaki_magnetization"] - row["initial_magnetization"]) < 1e-12
        assert row["glauber_homogeneity"] > 0.6
        assert row["kawasaki_homogeneity"] > 0.55

    glauber_sizes = table.numeric_column("glauber_mean_mono_size")
    kawasaki_sizes = table.numeric_column("kawasaki_mean_mono_size")
    assert glauber_sizes.mean() > kawasaki_sizes.mean()
    benchmark.extra_info["glauber_mean_size"] = float(glauber_sizes.mean())
    benchmark.extra_info["kawasaki_mean_size"] = float(kawasaki_sizes.mean())
