"""E9 — Lemma 19: probability of an unhappy agent in the initial configuration.

Lemma 19 brackets p_u between constants times 2^{-[1-H(tau')]N}/sqrt(N).  The
benchmark measures the unhappy fraction of Bernoulli(1/2) configurations over
a ladder of horizons, compares it with the exact binomial expression and with
the lemma's bracket, and checks that the measured probability decays as the
neighbourhood grows (the exponential-in-N signature).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import lemma19_unhappy_experiment


def bench_lemma19_unhappy_probability(benchmark, emit):
    table = benchmark.pedantic(
        lambda: lemma19_unhappy_experiment(
            horizons=(1, 2, 3, 4), tau=0.45, n_trials=15, seed=909
        ),
        rounds=1,
        iterations=1,
    )
    emit("E9_lemma19_unhappy", table, benchmark)

    empirical = table.numeric_column("empirical_unhappy_fraction")
    exact = table.numeric_column("exact_probability")
    lower = table.numeric_column("lemma_lower_bound")
    upper = table.numeric_column("lemma_upper_bound")

    # Monte-Carlo matches the exact binomial value and sits inside the bracket.
    assert np.allclose(empirical, exact, atol=0.05)
    assert np.all(lower <= exact)
    assert np.all(exact <= upper)
    # Exponential decay in N: strictly decreasing along the horizon ladder.
    assert np.all(np.diff(exact) < 0)
    benchmark.extra_info["exact_by_horizon"] = [float(v) for v in exact]
