"""E15 — ablation: scheduler and flip-rule variants of the dynamics.

The paper notes that the continuous-time Poisson-clock process is equivalent
to the discrete-time uniformly-random-unhappy-agent chain, and that for
tau < 1/2 the "flip only if it makes the agent happy" rule coincides with the
"always flip when unhappy" variant.  The benchmark runs all three variants on
shared initial configurations and checks that they terminate in states with
statistically indistinguishable segregation levels.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import dynamics_ablation_experiment


def bench_dynamics_ablation(benchmark, emit):
    table = benchmark.pedantic(
        lambda: dynamics_ablation_experiment(horizon=2, tau=0.45, n_replicates=3, seed=1501),
        rounds=1,
        iterations=1,
    )
    emit("E15_dynamics_ablation", table, benchmark)

    by_variant: dict[str, list[float]] = {}
    for row in table:
        assert row["terminated"]
        assert row["final_unhappy_fraction"] == 0.0
        by_variant.setdefault(str(row["variant"]), []).append(
            float(row["final_homogeneity"])
        )

    means = {variant: float(np.mean(values)) for variant, values in by_variant.items()}
    assert len(means) == 3
    spread = max(means.values()) - min(means.values())
    assert spread < 0.1, f"variants disagree on final homogeneity: {means}"
    benchmark.extra_info["homogeneity_by_variant"] = means
