"""Supervision overhead and fault-recovery cost of the sweep supervisor.

The fault-tolerance layer (retry bookkeeping, breadcrumb markers, deadline
tracking) must be effectively free when nothing goes wrong — a sweep run
with supervision enabled but no faults must stay within
:data:`MAX_SUPERVISION_OVERHEAD` of the plain path.  This bench measures
that overhead directly (best-of-``rounds`` on both sides, identical rows
asserted) and, for the trajectory, the wall-clock cost of recovering from an
injected crash.

Skips when fewer than two effective CPUs are available: the comparison is
about the *pool* supervisor, and a single-worker host would measure the
inline serial path instead.

``REPRO_BENCH_QUICK=1`` shrinks the per-cell work; the emitted
``BENCH_PERF_fault_recovery.json`` states the regime, cell grid and measured
ratios.
"""

from __future__ import annotations

import time
import warnings

import pytest

from repro.core.config import ModelConfig
from repro.errors import SweepDegradationWarning
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import default_worker_count, run_sweep_parallel
from repro.experiments.results import ResultTable
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import bench_quick_mode as quick_mode

#: Fault-free supervised runtime may exceed the plain runtime by at most
#: this fraction.  The supervisor's per-cell costs are two marker-file
#: touches and dictionary bookkeeping — noise next to any real cell.
MAX_SUPERVISION_OVERHEAD = 0.05

#: Best-of rounds per measured configuration (overhead ratios are noisy).
ROUNDS = 3


def recovery_sweep() -> SweepSpec:
    """Eight uniform cells sized so per-cell work dwarfs supervision costs."""
    side = 48 if quick_mode() else 80
    return SweepSpec(
        name="fault-recovery",
        base_config=ModelConfig.square(side=side, horizon=1, tau=0.4),
        taus=[0.35, 0.4, 0.45, 0.5],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=23,
    )


def _strip_timings(table: ResultTable) -> list[dict]:
    """Rows with the wall-clock column removed (the only legitimate diff)."""
    return [
        {key: value for key, value in row.items() if key != "wall_clock_seconds"}
        for row in table.rows
    ]


def _best_of(fn, rounds: int) -> tuple[float, ResultTable]:
    """Minimum wall-clock over ``rounds`` runs, plus the last table."""
    best = None
    table = None
    for _ in range(rounds):
        start = time.perf_counter()
        table = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, table


def bench_supervision_overhead(benchmark, emit):
    """Fault-free supervised vs plain sweep; overhead asserted under 5%."""
    effective = default_worker_count()
    if effective < 2:
        pytest.skip(
            f"only {effective} effective CPU(s): the supervised-vs-plain "
            "comparison needs a real worker pool"
        )
    sweep = recovery_sweep()
    workers = min(2, effective)

    def run() -> ResultTable:
        plain_seconds, plain_table = _best_of(
            lambda: run_sweep_parallel(sweep, workers=workers), ROUNDS
        )
        supervised_seconds, supervised_table = _best_of(
            lambda: run_sweep_parallel(
                sweep,
                workers=workers,
                retries=2,
                on_error="skip",
                cell_timeout=600.0,
            ),
            ROUNDS,
        )
        assert _strip_timings(supervised_table) == _strip_timings(plain_table)
        assert supervised_table.failures == []

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SweepDegradationWarning)
            recovery_seconds, recovered_table = _best_of(
                lambda: run_sweep_parallel(
                    sweep,
                    workers=workers,
                    retries=2,
                    on_error="retry",
                    backoff=0.0,
                    fault_plan=FaultPlan().crash(1),
                ),
                1,
            )
        assert _strip_timings(recovered_table) == _strip_timings(plain_table)

        table = ResultTable()
        table.add_row(
            mode="plain",
            seconds=plain_seconds,
            overhead=0.0,
        )
        table.add_row(
            mode="supervised",
            seconds=supervised_seconds,
            overhead=supervised_seconds / plain_seconds - 1.0,
        )
        table.add_row(
            mode="crash-recovery",
            seconds=recovery_seconds,
            overhead=recovery_seconds / plain_seconds - 1.0,
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    by_mode = {row["mode"]: row for row in table.rows}
    overhead = float(by_mode["supervised"]["overhead"])
    benchmark.extra_info["supervision_overhead"] = overhead
    benchmark.extra_info["recovery_overhead"] = float(
        by_mode["crash-recovery"]["overhead"]
    )
    benchmark.extra_info["workers"] = min(2, effective)
    benchmark.extra_info["effective_cpus"] = effective
    benchmark.extra_info["quick_mode"] = quick_mode()
    emit("PERF_fault_recovery", table, benchmark)
    assert overhead <= MAX_SUPERVISION_OVERHEAD, (
        f"fault-free supervision overhead {overhead:.1%} exceeds the "
        f"{MAX_SUPERVISION_OVERHEAD:.0%} budget"
    )
