"""E7 — monotonicity of the segregated-region size in the distance from 1/2.

The paper's asymptotic claim (Section I.B, Figure 3): within the theorem
range, intolerances farther from 1/2 have *larger* exponents, i.e. more
tolerant agents end up in larger segregated regions.  At simulable horizons
the empirical ordering is the opposite (cascades ignite less often for
smaller tau, so much of the grid stays frozen) — a documented finite-size
deviation recorded in EXPERIMENTS.md.  The benchmark therefore reports both
the measured sizes and the theoretical exponents, and asserts only the theory
ordering plus the fact that every tau in the range does segregate.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import monotonicity_experiment


def bench_monotonicity(benchmark, emit):
    table = benchmark.pedantic(
        lambda: monotonicity_experiment(horizon=2, n_replicates=3, seed=303),
        rounds=1,
        iterations=1,
    )
    emit("E7_monotonicity", table, benchmark)

    rows = sorted(table.rows, key=lambda row: row["distance_from_half"])
    exponents = [row["theory_lower_exponent"] for row in rows]
    sizes = [row["final_mean_monochromatic_size_mean"] for row in rows]

    # Theory ordering: the exponent grows with the distance from 1/2.
    assert exponents == sorted(exponents)
    # Every tau in the Theorem 1 range produces segregation well beyond the
    # initial configuration (mean region size ~1 on a random grid).
    assert min(sizes) > 5.0
    benchmark.extra_info["measured_sizes_by_distance"] = [float(s) for s in sizes]
    benchmark.extra_info["finite_size_order_matches_theory"] = bool(
        sizes == sorted(sizes, reverse=True)
    )
