"""Engine micro-benchmarks: raw simulator and analysis throughput.

These are not paper artefacts; they track the performance of the hot paths so
that regressions in the incremental state updates or the window-sum code are
visible in the benchmark report.
"""

from __future__ import annotations

from repro.analysis.regions import monochromatic_radius_map
from repro.core.config import ModelConfig
from repro.core.dynamics import GlauberDynamics
from repro.core.initializer import random_configuration
from repro.core.state import ModelState


def bench_glauber_run_to_termination(benchmark):
    """Full run on a 60x60 grid with horizon 2 (a few thousand flips)."""
    config = ModelConfig.square(side=60, horizon=2, tau=0.45)

    def run() -> int:
        state = ModelState(config, random_configuration(config, seed=3))
        result = GlauberDynamics(state, seed=4).run()
        return result.n_flips

    flips = benchmark(run)
    assert flips > 0


def bench_state_initialisation(benchmark):
    """Building the derived state (window sums + samplers) for a 200x200 grid."""
    config = ModelConfig.square(side=200, horizon=4, tau=0.45)
    grid = random_configuration(config, seed=5)
    state = benchmark(lambda: ModelState(config, grid.copy()))
    assert state.n_unhappy > 0


def bench_single_flip_update(benchmark):
    """Incremental cost of one flip on a 200x200 grid with horizon 4."""
    config = ModelConfig.square(side=200, horizon=4, tau=0.45)
    state = ModelState(config, random_configuration(config, seed=6))

    def flip_and_restore() -> None:
        state.apply_flip(100, 100)
        state.apply_flip(100, 100)

    benchmark(flip_and_restore)


def bench_monochromatic_radius_map(benchmark):
    """Region-radius scan on a terminated 80x80 configuration."""
    config = ModelConfig.square(side=80, horizon=2, tau=0.45)
    state = ModelState(config, random_configuration(config, seed=7))
    GlauberDynamics(state, seed=8).run()
    spins = state.grid.spins
    radii = benchmark(lambda: monochromatic_radius_map(spins, max_radius=10))
    assert radii.max() >= 1
