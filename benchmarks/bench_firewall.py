"""E11 — Lemma 9 (firewalls are static) and Lemmas 5/10 (radical regions cascade).

Two benchmarks:

* planted monochromatic annuli withstand a fully adversarial exterior, both
  in the static sufficient check and in an actual dynamics run (Lemma 9);
* planted radical regions are expandable (Lemma 5) and, under the full
  dynamics, leave their centre inside a monochromatic region at least as
  large as the core window (the mechanism of Lemma 10).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import firewall_experiment, radical_expansion_experiment


def bench_firewall_protection(benchmark, emit):
    table = benchmark.pedantic(
        lambda: firewall_experiment(horizon=2, tau=0.40, n_replicates=4, seed=1101),
        rounds=1,
        iterations=1,
    )
    emit("E11_firewall", table, benchmark)

    assert all(row["firewall_monochromatic"] for row in table)
    assert all(row["static_check_holds"] for row in table)
    assert all(row["survives_adversarial_run"] for row in table)
    benchmark.extra_info["n_replicates"] = len(table)


def bench_radical_region_cascade(benchmark, emit):
    table = benchmark.pedantic(
        lambda: radical_expansion_experiment(horizon=3, tau=0.45, n_replicates=4, seed=1102),
        rounds=1,
        iterations=1,
    )
    emit("E11_radical_expansion", table, benchmark)

    expanded = [bool(row["expandable"]) for row in table]
    radii = [float(row["final_center_mono_radius"]) for row in table]
    assert all(expanded)
    assert all(row["terminated"] for row in table)
    # The cascade leaves the planted centre in a monochromatic region of at
    # least the core radius (w/2 = 1) in most replicates.
    assert np.mean(radii) >= 1.0
    benchmark.extra_info["mean_final_radius"] = float(np.mean(radii))
