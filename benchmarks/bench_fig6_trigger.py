"""E4 — Figure 6: the trigger-radius infimum f(tau).

Figure 6 plots the infimum of the radical-region expansion factor eps' needed
to ignite a cascade (Eq. 10): close to zero when tau is near 1/2 and growing
as agents become more tolerant, staying below 1/2 on (tau2, 1/2).  The
benchmark reproduces the curve and asserts that shape.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure6_trigger_table
from repro.theory import tau2


def bench_figure6_trigger_curve(benchmark, emit):
    table = benchmark.pedantic(figure6_trigger_table, rounds=3, iterations=1)
    emit("E4_figure6_trigger", table, benchmark)

    taus = table.numeric_column("tau")
    values = table.numeric_column("f_tau")

    # Paper shape: decreasing in tau, vanishing towards 1/2, below 1/2 on the
    # whole (tau2, 1/2) interval.
    assert np.all(np.diff(values) <= 1e-12)
    assert values[-1] < 0.05
    assert np.all(values < 0.5)
    assert taus.min() > tau2()
    benchmark.extra_info["f_at_left_end"] = float(values[0])
    benchmark.extra_info["f_near_half"] = float(values[-1])
