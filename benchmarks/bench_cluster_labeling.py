"""Throughput benchmarks for the vectorized cluster labeller.

Two headline numbers back the measurement-pipeline claims:

* **labels/sec** — sites labelled per second by
  :func:`repro.percolation.cluster.label_clusters` on random masks from
  256^2 up to 1024^2, below and above the site-percolation threshold, with
  both free and periodic boundaries.  This is the hot path under
  ``analysis/clusters.py``, ``analysis/segregation.py`` and every
  cluster-reporting benchmark.
* **speedup vs reference** — on a 512x512 mask at ``p = 0.6`` with periodic
  boundaries the vectorized labeller must be at least 10x faster than
  ``_label_clusters_reference`` (the scalar union/find loop it replaced),
  with bitwise-identical label arrays.

``REPRO_BENCH_QUICK=1`` drops the 1024^2 masks and shrinks the repeat count
(same densities, same assertions) so the file finishes well under 30 seconds.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode
from repro.percolation.cluster import _label_clusters_reference, label_clusters

#: Acceptance floor for the vectorized labeller on the 512^2 / p=0.6 mask.
MIN_LABELING_SPEEDUP = 10.0

#: Densities straddling the square-lattice site threshold (~0.5927).
SUB_CRITICAL_P = 0.45
SUPER_CRITICAL_P = 0.65


def labeling_parameters() -> dict[str, object]:
    """Benchmark parameters, honouring ``REPRO_BENCH_QUICK``."""
    return {
        "sides": (256, 512) if quick_mode() else (256, 512, 1024),
        "densities": (SUB_CRITICAL_P, SUPER_CRITICAL_P),
        "repeats": 3 if quick_mode() else 5,
    }


def _time_labeling(mask: np.ndarray, periodic: bool, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one labelling call."""
    label_clusters(mask, periodic=periodic)  # warm-up outside the timer
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        label_clusters(mask, periodic=periodic)
        best = min(best, time.perf_counter() - start)
    return best


def bench_labels_per_second(benchmark, emit):
    """Sites labelled per second across sizes, densities and boundary modes."""
    params = labeling_parameters()
    rng = np.random.default_rng(2024)

    def run() -> ResultTable:
        table = ResultTable()
        for side in params["sides"]:
            for p_open in params["densities"]:
                mask = rng.random((side, side)) < p_open
                for periodic in (False, True):
                    seconds = _time_labeling(mask, periodic, params["repeats"])
                    table.add_row(
                        side=side,
                        p_open=p_open,
                        boundary="periodic" if periodic else "free",
                        seconds=seconds,
                        labels_per_second=mask.size / seconds,
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_cluster_labeling", table, benchmark)
    rates = table.numeric_column("labels_per_second")
    benchmark.extra_info["min_labels_per_second"] = float(min(rates))
    benchmark.extra_info["quick_mode"] = quick_mode()
    assert min(rates) > 0


def bench_vectorized_vs_reference_speedup(benchmark, emit):
    """Vectorized labeller vs the scalar reference: identical labels, >= 10x."""
    params = labeling_parameters()
    rng = np.random.default_rng(7)
    mask = rng.random((512, 512)) < 0.6

    def run() -> ResultTable:
        start = time.perf_counter()
        reference_labels = _label_clusters_reference(mask, periodic=True)
        reference_seconds = time.perf_counter() - start
        vectorized_seconds = _time_labeling(mask, True, params["repeats"])
        vectorized_labels = label_clusters(mask, periodic=True)
        assert np.array_equal(reference_labels, vectorized_labels), (
            "vectorized labels diverge from the reference implementation"
        )

        table = ResultTable()
        table.add_row(
            labeller="reference",
            seconds=reference_seconds,
            labels_per_second=mask.size / reference_seconds,
        )
        table.add_row(
            labeller="vectorized",
            seconds=vectorized_seconds,
            labels_per_second=mask.size / vectorized_seconds,
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_cluster_labeling_speedup", table, benchmark)
    rates = table.numeric_column("labels_per_second")
    speedup = rates[1] / rates[0]
    benchmark.extra_info["speedup"] = float(speedup)
    benchmark.extra_info["quick_mode"] = quick_mode()
    assert speedup >= MIN_LABELING_SPEEDUP, (
        f"labelling speedup {speedup:.2f}x below the {MIN_LABELING_SPEEDUP}x floor"
    )
