"""E6 — Theorem 2: E[M'] (almost monochromatic regions) grows exponentially in N.

Theorem 2 extends the exponential bracket to the almost monochromatic region
size for tau in (tau2, tau1].  As for E5, the benchmark validates the shape at
simulable horizons: almost-monochromatic region sizes grow with N, the fitted
log2 growth rate is positive, and almost-monochromatic regions dominate the
strictly monochromatic ones at the same parameters.
"""

from __future__ import annotations

from repro.experiments import theorem1_scaling, theorem2_scaling


def bench_theorem2_scaling(benchmark, emit):
    result = benchmark.pedantic(
        lambda: theorem2_scaling(
            taus=[0.36, 0.40, 0.43],
            horizons=[1, 2, 3],
            n_replicates=3,
            multiples=8,
            seed=202,
        ),
        rounds=1,
        iterations=1,
    )
    emit("E6_theorem2_measurements", result.measurements, benchmark)
    emit("E6_theorem2_fits", result.fits)

    for fit in result.fits:
        assert fit["measured_rate"] > 0, f"no exponential growth at tau={fit['tau']}"
        benchmark.extra_info[f"rate_tau_{fit['tau']}"] = float(fit["measured_rate"])

    for tau in {row["tau"] for row in result.measurements}:
        rows = sorted(
            (row for row in result.measurements if row["tau"] == tau),
            key=lambda row: row["neighborhood_agents"],
        )
        sizes = [row["mean_region_size"] for row in rows]
        assert sizes[-1] > sizes[0]


def bench_almost_regions_dominate_monochromatic(benchmark, emit):
    """At the same tau and horizon, E[M'] >= E[M] (the defining inclusion)."""
    tau, horizons = 0.43, [2]

    def run_both():
        almost = theorem2_scaling(
            taus=[tau], horizons=horizons, n_replicates=2, multiples=8, seed=7
        )
        mono = theorem1_scaling(
            taus=[tau], horizons=horizons, n_replicates=2, multiples=8, seed=7
        )
        return almost, mono

    almost, mono = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit("E6_almost_vs_mono_almost", almost.measurements)
    emit("E6_almost_vs_mono_mono", mono.measurements)
    almost_size = almost.measurements[0]["mean_region_size"]
    mono_size = mono.measurements[0]["mean_region_size"]
    assert almost_size >= mono_size
