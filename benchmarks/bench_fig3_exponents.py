"""E3 — Figure 3: exponent multipliers a(tau) and b(tau).

Figure 3 plots the lower/upper exponent multipliers of Theorems 1 and 2 over
the intolerance range, at the infimum trigger radius eps' = f(tau).  The
benchmark evaluates the same closed forms, checks a < b everywhere, the
symmetry about 1/2 and the monotonicity stated in the theorems (decreasing
towards 1/2 from below, increasing above).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure3_exponent_table
from repro.theory import is_monotone_on_half_interval


def bench_figure3_exponents(benchmark, emit):
    table = benchmark.pedantic(figure3_exponent_table, rounds=3, iterations=1)
    emit("E3_figure3_exponents", table, benchmark)

    taus = table.numeric_column("tau")
    lower = table.numeric_column("a")
    upper = table.numeric_column("b")

    assert np.all(lower > 0)
    assert np.all(lower < upper)
    # Monotone away from 1/2 on each side (the theorem's statement).
    assert is_monotone_on_half_interval(lower, taus)
    assert is_monotone_on_half_interval(upper, taus)
    # Symmetry about 1/2: compare each tau below 1/2 with its mirror.
    below = {round(t, 4): a for t, a in zip(taus, lower) if t < 0.5}
    above = {round(1.0 - t, 4): a for t, a in zip(taus, lower) if t > 0.5}
    for tau, value in below.items():
        if tau in above:
            assert abs(value - above[tau]) < 1e-9
    benchmark.extra_info["max_a"] = float(lower.max())
    benchmark.extra_info["max_b"] = float(upper.max())
