"""E10 — Proposition 1: self-similarity of sub-neighbourhood counts.

Proposition 1 states that conditioned on a neighbourhood holding fewer than
tau N minority agents, any sub-neighbourhood of relative size gamma holds
close to gamma tau N of them, within an N^{1/2+eps} window, with probability
approaching 1.  The benchmark estimates that conditional concentration
probability by rejection sampling at several horizons and checks it is high
and non-decreasing in N.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import proposition1_experiment


def bench_proposition1_concentration(benchmark, emit):
    table = benchmark.pedantic(
        lambda: proposition1_experiment(
            horizons=(3, 5, 7), tau=0.45, gamma=0.25, n_samples=400, seed=1001
        ),
        rounds=1,
        iterations=1,
    )
    emit("E10_prop1_selfsimilar", table, benchmark)

    probabilities = table.numeric_column("concentration_probability")
    deviations = table.numeric_column("mean_deviation")
    windows = table.numeric_column("window")

    assert np.all(probabilities > 0.9)
    assert np.all(deviations < windows)
    benchmark.extra_info["concentration_by_horizon"] = [float(p) for p in probabilities]
