"""E2 — Figure 2: behaviour across the intolerance axis.

Figure 2 partitions the intolerance axis into a static regime, an unknown
window, the Theorem 2 (almost monochromatic) band and the Theorem 1
(monochromatic) band, symmetric around 1/2.  The benchmark sweeps tau across
all of these regimes at a fixed horizon and checks the empirical ordering:
static intolerances barely flip, while both exponential regimes produce large
segregated regions and substantial flip activity.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2_interval_sweep
from repro.types import Regime


def bench_figure2_interval_sweep(benchmark, emit):
    table = benchmark.pedantic(
        lambda: figure2_interval_sweep(horizon=2, n_replicates=3, seed=11),
        rounds=1,
        iterations=1,
    )
    emit("E2_figure2_intervals", table, benchmark)

    by_regime: dict[str, list[float]] = {}
    flips_by_regime: dict[str, list[float]] = {}
    for row in table:
        regime = str(row["predicted_regime"])
        by_regime.setdefault(regime, []).append(
            float(row["final_mean_monochromatic_size_mean"])
        )
        flips_by_regime.setdefault(regime, []).append(float(row["n_flips_mean"]))

    mono = Regime.EXPONENTIAL_MONOCHROMATIC.value
    almost = Regime.EXPONENTIAL_ALMOST_MONOCHROMATIC.value
    segregating_sizes = by_regime.get(mono, []) + by_regime.get(almost, [])
    assert segregating_sizes, "sweep must cover the theorem regimes"

    # Paper shape: the segregating regimes produce much larger regions and far
    # more flip activity than the static / unknown regimes.
    quiet_regimes = [r for r in by_regime if r not in (mono, almost)]
    if quiet_regimes:
        quiet_sizes = [size for r in quiet_regimes for size in by_regime[r]]
        quiet_flips = [f for r in quiet_regimes for f in flips_by_regime[r]]
        assert np.mean(segregating_sizes) > 3 * np.mean(quiet_sizes)
        segregating_flips = flips_by_regime.get(mono, []) + flips_by_regime.get(almost, [])
        assert np.mean(segregating_flips) > np.mean(quiet_flips)
