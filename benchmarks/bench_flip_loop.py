"""Flip-loop microbenchmark: the fused round kernel in isolation.

Where ``bench_ensemble_throughput.py`` measures end-to-end ``run()`` rates,
this file times the per-round hot path alone — repeated ``step_all`` calls —
for the fused :class:`~repro.core.ensemble.EnsembleDynamics` against the
retained pre-fusion :class:`~repro.core.ensemble.ReferenceEnsembleDynamics`,
across several replica counts.  It is the microscope for the PR 5 tentpole:
regressions in the blocked-RNG draws, the batched index-set updates or the
fused window kernel show up here first, before they wash out in end-to-end
numbers.

Both engines advance bitwise-identical dynamics (asserted by the ensemble
test suite), so rounds/sec is a work-for-work comparison.  Quick mode trims
the round budget only; results land in ``PERF_flip_loop.csv`` and the
machine-readable ``BENCH_PERF_flip_loop.json``.
"""

from __future__ import annotations

import time

from repro.core.backends.registry import available_backends
from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics, ReferenceEnsembleDynamics
from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode
from repro.rng import ziggurat_exponential_tables

#: Microbench floor for the fused step loop at R = 8 (kept a notch below the
#: end-to-end 2x acceptance floor to absorb per-round timing noise).
MIN_STEP_SPEEDUP = 1.6

#: Replica counts to profile; the R = 8 row carries the assertion.
REPLICA_COUNTS = (4, 8, 16)

#: Flips/sec floor a compiled flip-loop backend (numba or cffi) must clear
#: over the numpy backend at R = 8 on the 128x128 grid.  Asserted whenever a
#: compiled backend is available — including in quick mode, where the round
#: budget is trimmed but the ratio is stable.
MIN_COMPILED_STEP_SPEEDUP = 3.0

#: Backends whose kernels are compiled (vs interpreted); the ``python``
#: backend is excluded from the bench outright — it exists as numba's
#: oracle, not as an execution engine anyone would time.
COMPILED_BACKENDS = ("numba", "cffi")


def flip_loop_parameters() -> dict[str, int]:
    """Grid/budget parameters, honouring ``REPRO_BENCH_QUICK``."""
    return {
        "side": 128,
        "horizon": 3,
        "rounds": 400 if quick_mode() else 4000,
    }


def _rounds_per_second(engine, rounds: int) -> float:
    """Time ``rounds`` consecutive ``step_all`` calls on a fresh engine."""
    start = time.perf_counter()
    for _ in range(rounds):
        engine.step_all()
    return rounds / (time.perf_counter() - start)


def bench_flip_loop_rounds_per_second(benchmark, emit):
    """step_all rounds/sec, fused vs reference, across replica counts."""
    params = flip_loop_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    rounds = params["rounds"]
    ziggurat_exponential_tables()  # one-time calibration outside the timing

    def run() -> ResultTable:
        table = ResultTable()
        for n_replicas in REPLICA_COUNTS:
            rates = {}
            for label, engine_cls in (
                ("reference", ReferenceEnsembleDynamics),
                ("fused", EnsembleDynamics),
            ):
                best = 0.0
                for _ in range(3 if quick_mode() else 1):
                    engine = engine_cls(config, n_replicas=n_replicas, seed=11)
                    best = max(best, _rounds_per_second(engine, rounds))
                rates[label] = best
                table.add_row(
                    engine=label,
                    n_replicas=n_replicas,
                    rounds=rounds,
                    rounds_per_second=best,
                    flips_per_second=best * n_replicas,
                )
            table.add_row(
                engine="speedup",
                n_replicas=n_replicas,
                rounds=rounds,
                rounds_per_second=rates["fused"] / rates["reference"],
                flips_per_second=rates["fused"] / rates["reference"],
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {
        row["n_replicas"]: row["rounds_per_second"]
        for row in table.rows
        if row["engine"] == "speedup"
    }
    benchmark.extra_info["quick_mode"] = quick_mode()
    for n_replicas, speedup in speedups.items():
        benchmark.extra_info[f"speedup_r{n_replicas}"] = float(speedup)
    emit("PERF_flip_loop", table, benchmark)
    assert speedups[8] >= MIN_STEP_SPEEDUP, (
        f"fused step loop {speedups[8]:.2f}x below the {MIN_STEP_SPEEDUP}x floor"
    )


def bench_flip_loop_backends(benchmark, emit):
    """flips/sec per flip-loop backend at R = 8; compiled floor asserted.

    Times the same ``step_all`` hot path with each available backend on one
    :class:`EnsembleDynamics` grid (128x128, w=3, R=8).  All backends advance
    bitwise-identical dynamics (asserted by the cross-backend test suite), so
    flips/sec is a work-for-work comparison.  Whenever a compiled backend
    (numba or cffi) is available, its speedup over the numpy backend must
    clear :data:`MIN_COMPILED_STEP_SPEEDUP`; on numpy-only hosts the bench
    records the numpy rate and asserts nothing.
    """
    params = flip_loop_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    rounds = params["rounds"]
    n_replicas = 8
    ziggurat_exponential_tables()  # one-time calibration outside the timing
    backends = [name for name in available_backends() if name != "python"]

    def run() -> ResultTable:
        table = ResultTable()
        for name in backends:
            best = 0.0
            for _ in range(3 if quick_mode() else 1):
                engine = EnsembleDynamics(
                    config, n_replicas=n_replicas, seed=11, backend=name
                )
                engine.step_all()  # warm-up: JIT/compile + capture
                best = max(best, _rounds_per_second(engine, rounds))
            table.add_row(
                engine=name,
                n_replicas=n_replicas,
                rounds=rounds,
                rounds_per_second=best,
                flips_per_second=best * n_replicas,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = {row["engine"]: row["flips_per_second"] for row in table.rows}
    benchmark.extra_info["quick_mode"] = quick_mode()
    benchmark.extra_info["backends"] = ",".join(backends)
    for name, rate in rates.items():
        benchmark.extra_info[f"flips_per_second_{name}"] = float(rate)
        if name != "numpy":
            benchmark.extra_info[f"speedup_{name}"] = float(
                rate / rates["numpy"]
            )
    emit("PERF_flip_loop_backends", table, benchmark)
    compiled = [name for name in backends if name in COMPILED_BACKENDS]
    for name in compiled:
        speedup = rates[name] / rates["numpy"]
        assert speedup >= MIN_COMPILED_STEP_SPEEDUP, (
            f"{name} backend {speedup:.2f}x below the "
            f"{MIN_COMPILED_STEP_SPEEDUP}x flips/sec floor over numpy"
        )
