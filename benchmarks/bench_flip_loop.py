"""Flip-loop microbenchmark: the fused round kernel in isolation.

Where ``bench_ensemble_throughput.py`` measures end-to-end ``run()`` rates,
this file times the per-round hot path alone — repeated ``step_all`` calls —
for the fused :class:`~repro.core.ensemble.EnsembleDynamics` against the
retained pre-fusion :class:`~repro.core.ensemble.ReferenceEnsembleDynamics`,
across several replica counts.  It is the microscope for the PR 5 tentpole:
regressions in the blocked-RNG draws, the batched index-set updates or the
fused window kernel show up here first, before they wash out in end-to-end
numbers.

Both engines advance bitwise-identical dynamics (asserted by the ensemble
test suite), so rounds/sec is a work-for-work comparison.  Quick mode trims
the round budget only; results land in ``PERF_flip_loop.csv`` and the
machine-readable ``BENCH_PERF_flip_loop.json``.
"""

from __future__ import annotations

import time

from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics, ReferenceEnsembleDynamics
from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode
from repro.rng import ziggurat_exponential_tables

#: Microbench floor for the fused step loop at R = 8 (kept a notch below the
#: end-to-end 2x acceptance floor to absorb per-round timing noise).
MIN_STEP_SPEEDUP = 1.6

#: Replica counts to profile; the R = 8 row carries the assertion.
REPLICA_COUNTS = (4, 8, 16)


def flip_loop_parameters() -> dict[str, int]:
    """Grid/budget parameters, honouring ``REPRO_BENCH_QUICK``."""
    return {
        "side": 128,
        "horizon": 3,
        "rounds": 400 if quick_mode() else 4000,
    }


def _rounds_per_second(engine, rounds: int) -> float:
    """Time ``rounds`` consecutive ``step_all`` calls on a fresh engine."""
    start = time.perf_counter()
    for _ in range(rounds):
        engine.step_all()
    return rounds / (time.perf_counter() - start)


def bench_flip_loop_rounds_per_second(benchmark, emit):
    """step_all rounds/sec, fused vs reference, across replica counts."""
    params = flip_loop_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    rounds = params["rounds"]
    ziggurat_exponential_tables()  # one-time calibration outside the timing

    def run() -> ResultTable:
        table = ResultTable()
        for n_replicas in REPLICA_COUNTS:
            rates = {}
            for label, engine_cls in (
                ("reference", ReferenceEnsembleDynamics),
                ("fused", EnsembleDynamics),
            ):
                best = 0.0
                for _ in range(3 if quick_mode() else 1):
                    engine = engine_cls(config, n_replicas=n_replicas, seed=11)
                    best = max(best, _rounds_per_second(engine, rounds))
                rates[label] = best
                table.add_row(
                    engine=label,
                    n_replicas=n_replicas,
                    rounds=rounds,
                    rounds_per_second=best,
                    flips_per_second=best * n_replicas,
                )
            table.add_row(
                engine="speedup",
                n_replicas=n_replicas,
                rounds=rounds,
                rounds_per_second=rates["fused"] / rates["reference"],
                flips_per_second=rates["fused"] / rates["reference"],
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {
        row["n_replicas"]: row["rounds_per_second"]
        for row in table.rows
        if row["engine"] == "speedup"
    }
    benchmark.extra_info["quick_mode"] = quick_mode()
    for n_replicas, speedup in speedups.items():
        benchmark.extra_info[f"speedup_r{n_replicas}"] = float(speedup)
    emit("PERF_flip_loop", table, benchmark)
    assert speedups[8] >= MIN_STEP_SPEEDUP, (
        f"fused step loop {speedups[8]:.2f}x below the {MIN_STEP_SPEEDUP}x floor"
    )
