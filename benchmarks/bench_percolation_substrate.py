"""E12 — percolation substrate checks (Theorems 3, 4 and 5 quoted by the paper).

* Kesten (Theorem 3): point-to-point first-passage times concentrate at the
  sqrt(k) scale and T_k/k converges to a time constant.
* Garet-Marchand (Theorem 4): in comfortably supercritical site percolation
  the chemical distance exceeds (1 + alpha)||x||_1 only rarely, and the
  exceedance probability shrinks with the distance.
* Grimmett (Theorem 5): the sub-critical origin-cluster radius tail decays
  exponentially.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import percolation_substrate_experiment


def bench_percolation_substrates(benchmark, emit):
    results = benchmark.pedantic(
        lambda: percolation_substrate_experiment(
            fpp_ks=(8, 16, 32),
            fpp_trials=60,
            chemical_p=0.85,
            chemical_separations=(8, 16, 24),
            chemical_trials=80,
            subcritical_p=0.35,
            radius_tail_radii=(1, 2, 3, 4, 6),
            radius_tail_trials=500,
            seed=1201,
        ),
        rounds=1,
        iterations=1,
    )
    emit("E12_first_passage", results["first_passage"], benchmark)
    emit("E12_chemical_distance", results["chemical"])
    emit("E12_radius_tail", results["radius_tail"])

    # Kesten: normalized fluctuations stay bounded as k grows and the time
    # constant estimates agree across k within a modest factor.
    fpp = results["first_passage"]
    fluctuations = fpp.numeric_column("normalized_fluctuation")
    constants = fpp.numeric_column("time_constant_estimate")
    assert fluctuations.max() < 5 * max(fluctuations.min(), 0.05)
    assert constants.max() < 2.0 * constants.min()

    # Garet-Marchand: high connection rate and rare large stretches, shrinking
    # with the separation.
    chem = results["chemical"]
    assert np.all(chem.numeric_column("connection_rate") > 0.9)
    exceed = chem.numeric_column("exceed_prob_alpha_025")
    assert exceed[-1] <= exceed[0] + 0.05

    # Grimmett: the tail is decreasing and the fitted decay rate is positive.
    tail = results["radius_tail"]
    probabilities = [
        float(row["tail_probability"]) for row in tail if row["radius"] >= 0
    ]
    assert all(b <= a for a, b in zip(probabilities, probabilities[1:]))
    decay_rows = [row for row in tail if row["radius"] < 0]
    assert decay_rows and float(decay_rows[0]["decay_rate"]) > 0
    benchmark.extra_info["decay_rate"] = float(decay_rows[0]["decay_rate"])
