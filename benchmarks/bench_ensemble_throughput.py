"""Throughput benchmarks for the vectorized ensemble and parallel runners.

Two headline numbers back the execution-engine claims:

* **flips/sec, scalar vs ensemble** — ``EnsembleDynamics`` with ``R = 8``
  replicas on a 128x128 torus must deliver at least 3x the flip throughput
  of 8 sequential scalar runs of the *same seeds* (the flip counts are
  asserted equal, so the comparison is work-for-work).
* **cells/sec, serial vs parallel** — ``run_sweep_parallel`` must produce a
  row-for-row identical table to the serial runner; the cells/sec of both
  paths is recorded so pool overheads stay visible in the report.

``REPRO_BENCH_QUICK=1`` caps the per-replica flip budget (same grid, same
assertions) so the file finishes well under 30 seconds.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics
from repro.core.simulation import Simulation
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.results import ResultTable
from repro.experiments.runner import run_sweep
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import bench_quick_mode as quick_mode

#: Acceptance floor for the ensemble engine (flips/sec ratio at R = 8).
MIN_ENSEMBLE_SPEEDUP = 3.0


def throughput_parameters() -> dict[str, Optional[int]]:
    """Benchmark parameters, honouring ``REPRO_BENCH_QUICK``.

    The grid (128x128, w=3, ``R = 8``) never shrinks — the acceptance claim
    is about that size — only the flip budget is capped in quick mode.
    """
    return {
        "side": 128,
        "horizon": 3,
        "n_replicas": 8,
        "max_flips": 1500 if quick_mode() else None,
    }


def bench_ensemble_vs_scalar_flips_per_second(benchmark, emit):
    """R = 8 lockstep replicas vs 8 sequential scalar runs, same seeds."""
    params = throughput_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    n_replicas = params["n_replicas"]
    max_flips = params["max_flips"]

    def run() -> ResultTable:
        ensemble = EnsembleDynamics(config, n_replicas=n_replicas, seed=7)
        start = time.perf_counter()
        result = ensemble.run(max_flips=max_flips)
        ensemble_seconds = time.perf_counter() - start
        ensemble_flips = result.total_flips

        start = time.perf_counter()
        scalar_flips = 0
        for seed in ensemble.replica_seeds:
            scalar_flips += Simulation(config, seed=seed).run(
                max_flips=max_flips
            ).n_flips
        scalar_seconds = time.perf_counter() - start

        table = ResultTable()
        table.add_row(
            engine="scalar x8",
            flips=scalar_flips,
            seconds=scalar_seconds,
            flips_per_second=scalar_flips / scalar_seconds,
        )
        table.add_row(
            engine="ensemble R=8",
            flips=ensemble_flips,
            seconds=ensemble_seconds,
            flips_per_second=ensemble_flips / ensemble_seconds,
        )
        assert scalar_flips == ensemble_flips, "engines disagree on total flips"
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_ensemble_throughput", table, benchmark)

    rates = table.numeric_column("flips_per_second")
    speedup = rates[1] / rates[0]
    benchmark.extra_info["speedup"] = float(speedup)
    benchmark.extra_info["quick_mode"] = quick_mode()
    assert speedup >= MIN_ENSEMBLE_SPEEDUP, (
        f"ensemble speedup {speedup:.2f}x below the {MIN_ENSEMBLE_SPEEDUP}x floor"
    )


def bench_parallel_vs_serial_cells_per_second(benchmark, emit):
    """Process-pool sweep vs serial sweep: identical rows, measured rates."""
    base = ModelConfig.square(side=24 if quick_mode() else 40, horizon=1, tau=0.4)
    sweep = SweepSpec(
        name="throughput",
        base_config=base,
        taus=[0.35, 0.4, 0.45],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=5,
    )
    workers = min(4, os.cpu_count() or 1)
    n_cells = sweep.n_cells()

    def run() -> ResultTable:
        start = time.perf_counter()
        serial = run_sweep(sweep)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_sweep_parallel(sweep, workers=workers)
        parallel_seconds = time.perf_counter() - start

        strip = lambda table: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in table.rows
        ]
        assert strip(serial) == strip(parallel), "parallel rows diverge from serial"

        table = ResultTable()
        table.add_row(
            runner="serial",
            cells=n_cells,
            seconds=serial_seconds,
            cells_per_second=n_cells / serial_seconds,
        )
        table.add_row(
            runner=f"parallel x{workers}",
            cells=n_cells,
            seconds=parallel_seconds,
            cells_per_second=n_cells / parallel_seconds,
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_parallel_sweep_throughput", table, benchmark)

    rates = table.numeric_column("cells_per_second")
    benchmark.extra_info["parallel_speedup"] = float(rates[1] / rates[0])
    benchmark.extra_info["workers"] = workers
    assert rates[1] > 0 and rates[0] > 0
