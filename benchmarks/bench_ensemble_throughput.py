"""Throughput benchmarks for the vectorized ensemble and parallel runners.

Three headline numbers back the execution-engine claims:

* **flips/sec, fused vs pre-fusion ensemble** — the fused flip loop
  (blocked RNG, batched index sets, fused window kernel) must deliver at
  least 2x the flip throughput of the retained
  :class:`~repro.core.ensemble.ReferenceEnsembleDynamics` at ``R = 8`` on a
  128x128 torus.  Both engines are bitwise equivalent to the same scalar
  runs, so the comparison is work-for-work by construction.
* **flips/sec, ensemble vs scalar** — the fused engine against 8 sequential
  scalar runs of the *same seeds* (flip counts asserted equal).
* **cells/sec, serial vs parallel** — ``run_sweep_parallel`` must produce a
  row-for-row identical table to the serial runner; the cells/sec of both
  paths is recorded so pool overheads stay visible in the report.

``REPRO_BENCH_QUICK=1`` caps the per-replica flip budget (same grid, same
assertions) so the file finishes well under 30 seconds.  Every emitted table
also lands as a machine-readable ``BENCH_*.json`` record (see
``benchmarks/_record.py``).
"""

from __future__ import annotations

import time
from typing import Optional

import pytest

from repro.core.config import ModelConfig
from repro.core.ensemble import EnsembleDynamics, ReferenceEnsembleDynamics
from repro.core.simulation import Simulation
from repro.experiments.parallel import default_worker_count, run_sweep_parallel
from repro.experiments.results import ResultTable
from repro.experiments.runner import run_sweep
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import bench_quick_mode as quick_mode
from repro.rng import ziggurat_exponential_tables

#: Acceptance floor for the fused engine over the retained pre-fusion
#: engine (flips/sec ratio at R = 8) — the PR 5 tentpole claim.
MIN_FUSED_SPEEDUP = 2.0
#: Acceptance floor for the fused engine over sequential scalar runs.
MIN_ENSEMBLE_SPEEDUP = 3.0
#: Conservative floor for the process-pool sweep over the serial runner at
#: >= 2 effective workers (pool start-up and result transfer included).
MIN_PARALLEL_SPEEDUP = 1.1


def throughput_parameters() -> dict[str, Optional[int]]:
    """Benchmark parameters, honouring ``REPRO_BENCH_QUICK``.

    The grid (128x128, w=3, ``R = 8``) never shrinks — the acceptance claim
    is about that size — only the flip budget is capped in quick mode.
    """
    return {
        "side": 128,
        "horizon": 3,
        "n_replicas": 8,
        "max_flips": 4000 if quick_mode() else None,
    }


def _engine_rate(engine_cls, config, n_replicas, max_flips, seed=7):
    """Best-of-3 flips/sec of one engine class (and its total flip count).

    A short throwaway run warms caches and lazy one-time setup (RNG blocks,
    lookup tables) before anything is timed; the quick-mode best-of-3 then
    absorbs scheduler noise on shared CI machines.
    """
    engine_cls(config, n_replicas=n_replicas, seed=seed).run(max_flips=200)
    best = 0.0
    flips = None
    for _ in range(3 if quick_mode() else 1):
        engine = engine_cls(config, n_replicas=n_replicas, seed=seed)
        start = time.perf_counter()
        result = engine.run(max_flips=max_flips)
        elapsed = time.perf_counter() - start
        if flips is None:
            flips = result.total_flips
        assert flips == result.total_flips
        best = max(best, result.total_flips / elapsed)
    return best, flips


def bench_fused_vs_reference_flips_per_second(benchmark, emit):
    """Fused flip loop vs the retained pre-fusion engine, same seeds."""
    params = throughput_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    n_replicas = params["n_replicas"]
    max_flips = params["max_flips"]
    ziggurat_exponential_tables()  # one-time calibration outside the timing

    def run() -> ResultTable:
        reference_rate, reference_flips = _engine_rate(
            ReferenceEnsembleDynamics, config, n_replicas, max_flips
        )
        fused_rate, fused_flips = _engine_rate(
            EnsembleDynamics, config, n_replicas, max_flips
        )
        assert reference_flips == fused_flips, "engines disagree on total flips"
        table = ResultTable()
        table.add_row(
            engine="reference R=8",
            flips=reference_flips,
            flips_per_second=reference_rate,
        )
        table.add_row(
            engine="fused R=8", flips=fused_flips, flips_per_second=fused_rate
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = table.numeric_column("flips_per_second")
    speedup = rates[1] / rates[0]
    benchmark.extra_info["fused_speedup"] = float(speedup)
    benchmark.extra_info["quick_mode"] = quick_mode()
    benchmark.extra_info["n_replicas"] = throughput_parameters()["n_replicas"]
    emit("PERF_fused_flip_loop", table, benchmark)
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused speedup {speedup:.2f}x below the {MIN_FUSED_SPEEDUP}x floor"
    )


def bench_ensemble_vs_scalar_flips_per_second(benchmark, emit):
    """R = 8 lockstep replicas vs 8 sequential scalar runs, same seeds."""
    params = throughput_parameters()
    config = ModelConfig.square(
        side=params["side"], horizon=params["horizon"], tau=0.45
    )
    n_replicas = params["n_replicas"]
    max_flips = params["max_flips"]
    ziggurat_exponential_tables()

    def run() -> ResultTable:
        ensemble = EnsembleDynamics(config, n_replicas=n_replicas, seed=7)
        start = time.perf_counter()
        result = ensemble.run(max_flips=max_flips)
        ensemble_seconds = time.perf_counter() - start
        ensemble_flips = result.total_flips

        start = time.perf_counter()
        scalar_flips = 0
        for seed in ensemble.replica_seeds:
            scalar_flips += Simulation(config, seed=seed).run(
                max_flips=max_flips
            ).n_flips
        scalar_seconds = time.perf_counter() - start

        table = ResultTable()
        table.add_row(
            engine="scalar x8",
            flips=scalar_flips,
            seconds=scalar_seconds,
            flips_per_second=scalar_flips / scalar_seconds,
        )
        table.add_row(
            engine="ensemble R=8",
            flips=ensemble_flips,
            seconds=ensemble_seconds,
            flips_per_second=ensemble_flips / ensemble_seconds,
        )
        assert scalar_flips == ensemble_flips, "engines disagree on total flips"
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = table.numeric_column("flips_per_second")
    speedup = rates[1] / rates[0]
    benchmark.extra_info["speedup"] = float(speedup)
    benchmark.extra_info["quick_mode"] = quick_mode()
    emit("PERF_ensemble_throughput", table, benchmark)
    assert speedup >= MIN_ENSEMBLE_SPEEDUP, (
        f"ensemble speedup {speedup:.2f}x below the {MIN_ENSEMBLE_SPEEDUP}x floor"
    )


def bench_parallel_vs_serial_cells_per_second(benchmark, emit):
    """Process-pool sweep vs serial sweep: identical rows, measured rates.

    Refuses to run — and therefore to emit a ``PERF_parallel_sweep_throughput``
    record — when fewer than two workers are effectively available: a
    one-worker "parallel" run exercises the inline serial path, and recording
    it as parallel is how an unmeasured scaling claim once slipped into the
    repo's benchmark records.
    """
    effective = default_worker_count()
    if effective < 2:
        pytest.skip(
            f"only {effective} effective CPU(s) (affinity-aware): a "
            "single-worker run measures the serial path, refusing to record "
            "it as parallel"
        )
    base = ModelConfig.square(side=24 if quick_mode() else 40, horizon=1, tau=0.4)
    sweep = SweepSpec(
        name="throughput",
        base_config=base,
        taus=[0.35, 0.4, 0.45],
        densities=[0.45, 0.55],
        n_replicates=2,
        seed=5,
    )
    workers = min(4, effective)
    n_cells = sweep.n_cells()

    def run() -> ResultTable:
        start = time.perf_counter()
        serial = run_sweep(sweep)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_sweep_parallel(sweep, workers=workers)
        parallel_seconds = time.perf_counter() - start

        strip = lambda table: [
            {k: v for k, v in row.items() if k != "wall_clock_seconds"}
            for row in table.rows
        ]
        assert strip(serial) == strip(parallel), "parallel rows diverge from serial"

        table = ResultTable()
        table.add_row(
            runner="serial",
            cells=n_cells,
            seconds=serial_seconds,
            cells_per_second=n_cells / serial_seconds,
        )
        table.add_row(
            runner=f"parallel x{workers}",
            cells=n_cells,
            seconds=parallel_seconds,
            cells_per_second=n_cells / parallel_seconds,
        )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = table.numeric_column("cells_per_second")
    speedup = float(rates[1] / rates[0])
    benchmark.extra_info["parallel_speedup"] = speedup
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["effective_cpus"] = effective
    emit("PERF_parallel_sweep_throughput", table, benchmark)
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"parallel sweep speedup {speedup:.2f}x at {workers} workers is below "
        f"the {MIN_PARALLEL_SPEEDUP}x floor"
    )
