"""E1 — Figure 1: self-organised segregation snapshots.

The paper's Figure 1 shows a 1000x1000 grid with neighbourhood size 441 and
tau = 0.42 evolving from a random configuration to large segregated regions,
with all agents happy at termination.  The benchmark runs the scaled-down
configuration (same tau, same grid-to-horizon ratio; see
``repro.experiments.workloads.figure1_config``), records the four panels and
checks the qualitative signatures: homogeneity rises, interfaces shrink,
unhappy agents vanish.  Set ``REPRO_FULL_SCALE=1`` for the paper's exact
parameters.
"""

from __future__ import annotations

from repro.experiments import figure1_snapshots


def bench_figure1_snapshots(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure1_snapshots(seed=2017, n_intermediate=2),
        rounds=1,
        iterations=1,
    )
    emit("E1_figure1_snapshots", result.metrics, benchmark)

    homogeneity = result.metrics.numeric_column("local_homogeneity")
    interfaces = result.metrics.numeric_column("interface_density")
    unhappy = result.metrics.numeric_column("unhappy_fraction")
    benchmark.extra_info["total_flips"] = result.total_flips
    benchmark.extra_info["final_homogeneity"] = float(homogeneity[-1])

    # Paper shape: the process terminates with every agent happy and with
    # large segregated (high-homogeneity, low-interface) regions.
    assert result.terminated
    assert unhappy[-1] == 0.0
    assert homogeneity[-1] > homogeneity[0] + 0.2
    assert interfaces[-1] < interfaces[0] / 3
    assert result.metrics.numeric_column("mean_monochromatic_size")[-1] > 50
