"""Machine-readable benchmark records.

Every bench's quick mode (and full mode alike) emits one
``benchmarks/results/BENCH_<name>.json`` alongside its CSV: a timestamped
record of the run's configuration and headline metrics (speedups,
throughputs) plus the host name, the interpreter/numpy (and numba, when
present) versions and the host's default flip-loop backend.  CI uploads
these files as
artifacts, so the perf trajectory of the hot paths is tracked PR over PR
without scraping pytest output.

:func:`record_benchmark` is called automatically by the ``emit`` fixture in
``benchmarks/conftest.py`` — benchmarks only need to put their headline
numbers into ``benchmark.extra_info`` *before* calling ``emit`` — and can
also be called directly for records with richer config payloads.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def _json_safe(value):
    """Best-effort coercion of numpy scalars/paths to JSON-native values."""
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def record_benchmark(
    name: str,
    metrics: Optional[dict] = None,
    config: Optional[dict] = None,
    quick_mode: Optional[bool] = None,
) -> Path:
    """Write ``benchmarks/results/BENCH_<name>.json`` and return its path.

    ``metrics`` carries the headline numbers (speedups, rates), ``config``
    the benchmark parameters that produced them.  ``quick_mode`` defaults to
    the ``REPRO_BENCH_QUICK`` environment switch the benchmarks honour, so a
    record always states which regime produced it.  The write is atomic
    (temp file + rename) so a crashed bench never leaves a torn record.
    """
    if quick_mode is None:
        from repro.experiments.workloads import bench_quick_mode

        quick_mode = bench_quick_mode()
    import numpy

    from repro.core.backends.registry import default_backend_name

    payload = {
        "name": name,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick_mode": bool(quick_mode),
        "config": _json_safe(config or {}),
        "metrics": _json_safe(metrics or {}),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        # The flip-loop backend ``auto`` resolves to on this host — the one
        # a default run would measure.  Benches that pin a backend also put
        # it in ``config``; this field records the host's capability.
        "backend": default_backend_name(),
    }
    try:
        import numba

        payload["numba"] = numba.__version__
    except ImportError:
        pass
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    descriptor, tmp = tempfile.mkstemp(dir=RESULTS_DIR, suffix=".json")
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        # A failed dump (unserialisable metric, full disk) must not leave
        # the mkstemp file behind in benchmarks/results/.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
