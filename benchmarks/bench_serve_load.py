"""Hot vs cold request throughput of the HTTP query service.

Spins up a real ``repro serve`` endpoint (ephemeral port, threaded stdlib
server) over a synthetic summary store and measures requests/second in two
regimes:

- **hot** — every client hammers the same parameter point, so after the
  first miss the single-flight LRU answers from memory.  This is the
  production steady state and gets an asserted throughput floor.
- **cold** — every request names a distinct point, so each one pays the
  full resolve-and-nearest-lookup path plus cache-insert/evict churn.

The hot/cold ratio is the cache's measured leverage; the exact-accounting
invariant (every request is one hit, miss or coalesce) is asserted over the
live ``/stats`` counters.  ``REPRO_BENCH_QUICK=1`` shrinks the request
counts; the emitted ``BENCH_serve_load.json`` states the regime, counts and
both rates.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.experiments.checkpoint import SUMMARY_FORMAT, SUMMARY_NAME
from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode
from repro.serving import LRUCache, make_server

#: Minimum hot (cache-hit) requests/second.  Deliberately conservative —
#: the stdlib threaded server on a loaded CI runner still clears this by an
#: order of magnitude; the floor exists to catch a pathological regression
#: (e.g. a lock held across the answer path), not to race the hardware.
HOT_RPS_FLOOR = 25.0

#: Concurrent client threads (the server is threaded; exercise that).
CLIENTS = 4


def _grid_store(directory, taus, rhos):
    """Fabricate a summary-only store with a ``len(taus) x len(rhos)`` grid."""
    cells = []
    for i, tau in enumerate(taus):
        for j, rho in enumerate(rhos):
            index = i * len(rhos) + j
            value = float(index)
            cells.append(
                {
                    "index": index,
                    "name": f"cell{index}",
                    "spec_hash": f"hash{index:06d}",
                    "params": {"tau": tau, "w": 2, "rho": rho},
                    "n_replicates": 2,
                    "metrics": {
                        "score": {
                            "count": 2.0,
                            "mean": value,
                            "std": 0.0,
                            "min": value,
                            "max": value,
                            "ci_low": value,
                            "ci_high": value,
                        }
                    },
                    "failure": None,
                }
            )
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": SUMMARY_FORMAT,
        "version": 1,
        "n_cells": len(cells),
        "n_summarized": len(cells),
        "n_failed": 0,
        "n_missing": 0,
        "complete": True,
        "cells": cells,
    }
    (directory / SUMMARY_NAME).write_text(json.dumps(payload))
    return directory


def _measure(base: str, paths: list[str]) -> float:
    """Issue every path from :data:`CLIENTS` threads; return requests/sec."""
    def fetch(path: str) -> None:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
            assert response.status == 200
            response.read()

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        list(pool.map(fetch, paths))
    return len(paths) / (time.perf_counter() - start)


def bench_serve_load(benchmark, emit, tmp_path):
    """Hot vs cold req/sec over a live server, hot floor asserted."""
    hot_n = 200 if quick_mode() else 2000
    cold_n = 100 if quick_mode() else 500
    taus = [round(0.2 + 0.03 * i, 4) for i in range(10)]
    rhos = [round(0.3 + 0.03 * j, 4) for j in range(10)]
    store = _grid_store(tmp_path / "store", taus, rhos)

    server = make_server(store, port=0, cache=LRUCache(256))
    accept = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    accept.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    def run() -> ResultTable:
        hot_paths = ["/query?tau=0.29&rho=0.39&w=2"] * hot_n
        cold_paths = [
            f"/query?tau={0.2 + 0.6 * k / cold_n:.6f}"
            f"&rho={0.3 + 0.4 * k / cold_n:.6f}&w=2"
            for k in range(cold_n)
        ]
        hot_rps = _measure(base, hot_paths)
        cold_rps = _measure(base, cold_paths)

        with urllib.request.urlopen(f"{base}/stats", timeout=30) as response:
            stats = json.loads(response.read())
        cache = stats["cache"]
        # exact accounting: every /query classified exactly once
        assert (
            cache["hits"] + cache["misses"] + cache["coalesced"]
            == hot_n + cold_n
        )
        assert cache["hits"] + cache["coalesced"] >= hot_n - 1
        assert cache["misses"] >= cold_n  # every cold point is distinct

        table = ResultTable()
        table.add_row(phase="hot", requests=hot_n, rps=hot_rps)
        table.add_row(phase="cold", requests=cold_n, rps=cold_rps)
        return table

    try:
        table = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        server.shutdown()
        server.server_close()
        accept.join(timeout=5)

    by_phase = {row["phase"]: row for row in table.rows}
    hot_rps = float(by_phase["hot"]["rps"])
    cold_rps = float(by_phase["cold"]["rps"])
    benchmark.extra_info["hot_rps"] = hot_rps
    benchmark.extra_info["cold_rps"] = cold_rps
    benchmark.extra_info["hot_over_cold"] = hot_rps / cold_rps
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["quick_mode"] = quick_mode()
    emit("serve_load", table, benchmark)
    assert hot_rps >= HOT_RPS_FLOOR, (
        f"hot-path throughput {hot_rps:.1f} req/s fell below the "
        f"{HOT_RPS_FLOOR} req/s floor"
    )
