"""E13 — initial density sweep: complete segregation contrast (Fontes et al.).

The paper proves that at p = 1/2 complete segregation does not occur w.h.p.
for the studied intolerance range, while Fontes et al. show that at tau = 1/2
and p close to 1 the dynamics fixates on a single type.  The benchmark sweeps
the initial density at tau = 1/2 and checks that the final dominant-type
fraction rises towards 1 with p and stays clearly below 1 at p = 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import density_sweep_experiment


def bench_density_sweep(benchmark, emit):
    table = benchmark.pedantic(
        lambda: density_sweep_experiment(
            horizon=2,
            tau=0.5,
            densities=[0.5, 0.6, 0.7, 0.8, 0.9],
            n_replicates=3,
            seed=1301,
        ),
        rounds=1,
        iterations=1,
    )
    emit("E13_density_sweep", table, benchmark)

    by_density: dict[float, list[float]] = {}
    for row in table:
        by_density.setdefault(float(row["density"]), []).append(
            float(row["final_dominant_fraction"])
        )
    densities = sorted(by_density)
    means = [float(np.mean(by_density[d])) for d in densities]

    # No complete segregation at p = 1/2; near-complete dominance at p = 0.9.
    assert means[0] < 0.9
    assert means[-1] > 0.95
    # Broadly increasing in p (allow small non-monotonic wiggles).
    assert means[-1] > means[0]
    assert all(b >= a - 0.1 for a, b in zip(means, means[1:]))
    benchmark.extra_info["dominance_by_density"] = dict(zip(map(str, densities), means))
