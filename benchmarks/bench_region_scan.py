"""Throughput benchmarks for the batched region scans.

Two headline numbers back the batched-analysis claims of the measurement
pipeline:

* **speedup vs reference** — on a 256^2 torus scanned up to ``limit = 32``
  the top-down active-set sweep of
  :func:`repro.analysis.regions.almost_monochromatic_radius_map` must be at
  least 4x faster than ``_almost_monochromatic_radius_map_reference`` (the
  per-radius ``minority_ratio_map`` loop it replaced) on a segregated
  configuration — wide monochromatic domains with sparse defects, the shape
  every terminated run produces and exactly where Theorem 2's ``E[M']``
  estimate spends its time.  Mixed (blocky) and fully random grids are
  reported alongside as the unfavourable cases.  Radius maps must match the
  reference bitwise on every grid.
* **sites/sec** — joint throughput of the monochromatic + almost
  monochromatic scans sharing one summed-area table via
  :func:`repro.analysis.regions.region_scan_table`, across grid sizes and
  grid structures.  This is the measurement path every sweep row pays twice
  (initial and final configuration).

``REPRO_BENCH_QUICK=1`` drops the 512^2 grids and shrinks the repeat count
(same 256^2 acceptance grid, same assertions) so the file finishes well
under 30 seconds.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.regions import (
    _almost_monochromatic_radius_map_reference,
    almost_monochromatic_radius_map,
    monochromatic_radius_map,
    region_scan_table,
)
from repro.experiments.results import ResultTable
from repro.experiments.workloads import bench_quick_mode as quick_mode

#: Acceptance floor for the batched almost-mono scan on the 256^2 / limit=32
#: segregated grid.
MIN_ALMOST_SCAN_SPEEDUP = 4.0

#: The scan cap of the acceptance grid (the issue's ``limit >= 32``).
SCAN_LIMIT = 32

#: Almost-monochromatic ratio threshold used throughout (close to the
#: paper's ``e^{-eps N}`` at w = 3).
RATIO_THRESHOLD = 0.1

#: Defect density sprinkled over the structured grids so the almost-mono
#: property does real work (strictly monochromatic windows are rare).
DEFECT_DENSITY = 0.01


def scan_parameters() -> dict[str, object]:
    """Benchmark parameters, honouring ``REPRO_BENCH_QUICK``."""
    return {
        "sides": (256,) if quick_mode() else (256, 512),
        "repeats": 3 if quick_mode() else 5,
    }


def _with_defects(spins: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Flip a sparse random subset of sites to the opposite type."""
    spins = spins.copy()
    spins[rng.random(spins.shape) < DEFECT_DENSITY] *= -1
    return spins


def scan_grids(side: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    """The three grid structures the scans are exercised on.

    ``segregated`` (wide stripes + defects) models a terminated
    configuration, ``blocky`` (checkerboard of side/4 blocks + defects) a
    mid-cascade one, and ``random`` an initial one.
    """
    rows, cols = np.indices((side, side))
    stripes = np.where((cols // (side // 2)) % 2 == 0, 1, -1).astype(np.int8)
    blocks = np.where(((rows // (side // 4)) + (cols // (side // 4))) % 2 == 0, 1, -1)
    return {
        "segregated": _with_defects(stripes, rng),
        "blocky": _with_defects(blocks.astype(np.int8), rng),
        "random": np.where(rng.random((side, side)) < 0.5, 1, -1).astype(np.int8),
    }


def _best_seconds(func, repeats: int):
    """Best-of-``repeats`` wall-clock seconds plus the warm-up call's result."""
    result = func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_almost_scan_speedup(benchmark, emit):
    """Batched almost-mono scan vs the linear reference: identical maps, >= 4x."""
    params = scan_parameters()
    rng = np.random.default_rng(7)
    grids = scan_grids(256, rng)

    def run() -> ResultTable:
        table = ResultTable()
        for structure, spins in grids.items():
            # Both sides are timed with the same warmed-up best-of-N
            # protocol so the speedup gate compares like with like; the
            # warm-up calls double as the correctness runs.
            reference_seconds, reference = _best_seconds(
                lambda spins=spins: _almost_monochromatic_radius_map_reference(
                    spins, RATIO_THRESHOLD, max_radius=SCAN_LIMIT
                ),
                params["repeats"],
            )
            batched_seconds, batched = _best_seconds(
                lambda spins=spins: almost_monochromatic_radius_map(
                    spins, RATIO_THRESHOLD, max_radius=SCAN_LIMIT
                ),
                params["repeats"],
            )
            assert np.array_equal(reference, batched), (
                f"batched almost-mono map diverges from the reference on "
                f"the {structure} grid"
            )
            table.add_row(
                structure=structure,
                side=256,
                limit=SCAN_LIMIT,
                reference_seconds=reference_seconds,
                batched_seconds=batched_seconds,
                speedup=reference_seconds / batched_seconds,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_almost_mono_scan_speedup", table, benchmark)
    speedups = dict(zip(table.column("structure"), table.numeric_column("speedup")))
    benchmark.extra_info["segregated_speedup"] = float(speedups["segregated"])
    benchmark.extra_info["quick_mode"] = quick_mode()
    assert speedups["segregated"] >= MIN_ALMOST_SCAN_SPEEDUP, (
        f"almost-mono scan speedup {speedups['segregated']:.2f}x below the "
        f"{MIN_ALMOST_SCAN_SPEEDUP}x floor on the segregated grid"
    )


def bench_region_scan_throughput(benchmark, emit):
    """Sites/sec of the mono + almost-mono scans sharing one table."""
    params = scan_parameters()
    rng = np.random.default_rng(2024)

    def run() -> ResultTable:
        table = ResultTable()
        for side in params["sides"]:
            for structure, spins in scan_grids(side, rng).items():

                def both_scans(spins=spins) -> None:
                    shared = region_scan_table(spins, max_radius=SCAN_LIMIT)
                    monochromatic_radius_map(
                        spins, max_radius=SCAN_LIMIT, table=shared
                    )
                    almost_monochromatic_radius_map(
                        spins, RATIO_THRESHOLD, max_radius=SCAN_LIMIT, table=shared
                    )

                seconds, _ = _best_seconds(both_scans, params["repeats"])
                table.add_row(
                    structure=structure,
                    side=side,
                    limit=SCAN_LIMIT,
                    seconds=seconds,
                    sites_per_second=spins.size / seconds,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("PERF_region_scan_throughput", table, benchmark)
    rates = table.numeric_column("sites_per_second")
    benchmark.extra_info["min_sites_per_second"] = float(min(rates))
    benchmark.extra_info["quick_mode"] = quick_mode()
    assert min(rates) > 0
