"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure/table/claim of the paper (see the
experiment index in DESIGN.md).  The helpers here give each benchmark a
uniform way to (a) print the reproduced rows so that the paper-vs-measured
comparison is visible in the pytest output, and (b) persist them as CSV under
``benchmarks/results/`` for later inspection or plotting.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _record import record_benchmark
from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(name: str, table: ResultTable, benchmark=None) -> Path:
    """Print ``table``, write ``<name>.csv`` and record ``BENCH_<name>.json``.

    When a pytest-benchmark fixture is passed, a couple of headline numbers
    are attached to its ``extra_info`` so they appear in the benchmark
    report; whatever the benchmark has put into ``extra_info`` *before*
    calling ``emit`` also lands in the machine-readable JSON record (see
    ``benchmarks/_record.py``), which CI uploads as an artifact.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.csv"
    table.to_csv(path)
    print(f"\n[{name}] {len(table)} rows -> {path}")
    print(table.to_markdown(float_format=".4g"))
    metrics = {"rows": len(table)}
    if benchmark is not None:
        metrics.update(benchmark.extra_info)
        benchmark.extra_info["rows"] = len(table)
        benchmark.extra_info["csv"] = str(path)
    record_benchmark(name, metrics=metrics, config={"csv": path.name})
    return path


@pytest.fixture
def emit():
    """Fixture handing benchmarks the :func:`emit_table` helper."""
    return emit_table
