"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure/table/claim of the paper (see the
experiment index in DESIGN.md).  The helpers here give each benchmark a
uniform way to (a) print the reproduced rows so that the paper-vs-measured
comparison is visible in the pytest output, and (b) persist them as CSV under
``benchmarks/results/`` for later inspection or plotting.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(name: str, table: ResultTable, benchmark=None) -> Path:
    """Print ``table`` and write it to ``benchmarks/results/<name>.csv``.

    When a pytest-benchmark fixture is passed, a couple of headline numbers
    are attached to its ``extra_info`` so they appear in the benchmark report.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.csv"
    table.to_csv(path)
    print(f"\n[{name}] {len(table)} rows -> {path}")
    print(table.to_markdown(float_format=".4g"))
    if benchmark is not None:
        benchmark.extra_info["rows"] = len(table)
        benchmark.extra_info["csv"] = str(path)
    return path


@pytest.fixture
def emit():
    """Fixture handing benchmarks the :func:`emit_table` helper."""
    return emit_table
