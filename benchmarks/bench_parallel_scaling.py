"""Measured multi-worker scaling for the process-pool sweep runner.

This bench exists because a scaling claim once went unmeasured: the repo
carried a ``PERF_parallel_sweep_throughput`` record produced with
``workers=1`` — a configuration in which :func:`run_sweep_parallel` runs the
inline *serial* path — labelled as a parallel result.  The rules here prevent
a recurrence:

* **Honest gating** — if fewer than two workers are effectively available
  (affinity-aware, :func:`default_worker_count`), the bench *skips with an
  explicit reason* instead of emitting a record.  A ``workers=1`` run is
  never recorded as parallel.
* **Measured grid** — the sweep runs at every worker count in {1, 2, 4} that
  the host can actually schedule, with row-for-row identity to the
  single-worker table asserted at each count.
* **Asserted floor** — the 2-worker run must beat the 1-worker run by
  :data:`MIN_SCALING_SPEEDUP`; higher counts are recorded for the trajectory
  but carry no floor (CI runners vary in core count).

``REPRO_BENCH_QUICK=1`` shrinks the per-cell work, not the worker grid; the
emitted ``BENCH_PERF_parallel_sweep_scaling.json`` always states the worker
counts, the effective CPU count and the transfer mode that produced it.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import ModelConfig
from repro.experiments.parallel import default_worker_count, run_sweep_parallel
from repro.experiments.results import ResultTable
from repro.experiments.spec import SweepSpec
from repro.experiments.workloads import bench_quick_mode as quick_mode

#: Conservative speedup floor for 2 workers over the inline serial path.
#: Ideal is 2x; pool start-up, result transfer and load imbalance eat into
#: it, so the floor asserts "real parallelism happened", not "perfect
#: scaling".
MIN_SCALING_SPEEDUP = 1.2

#: Worker counts the bench measures (capped by the effective CPU count).
WORKER_GRID = (1, 2, 4)


def scaling_sweep() -> SweepSpec:
    """The benchmark sweep: 8 uniform cells, sized so pool overhead is noise.

    Quick mode keeps each cell at roughly 0.2 s (64x64, 4 replicates) so the
    serial baseline stays under a few seconds while still dwarfing the
    ~tens-of-milliseconds fork-and-collect overhead per worker.
    """
    side = 64 if quick_mode() else 96
    return SweepSpec(
        name="scaling",
        base_config=ModelConfig.square(side=side, horizon=1, tau=0.4),
        taus=[0.35, 0.4, 0.45, 0.5],
        densities=[0.45, 0.55],
        n_replicates=4,
        seed=17,
    )


def _strip_timings(table: ResultTable) -> list[dict]:
    """Rows with the wall-clock column removed (the only legitimate diff)."""
    return [
        {key: value for key, value in row.items() if key != "wall_clock_seconds"}
        for row in table.rows
    ]


def bench_sweep_worker_scaling(benchmark, emit):
    """cells/sec at 1, 2 and 4 workers; floor asserted at 2, rows identical."""
    effective = default_worker_count()
    if effective < 2:
        pytest.skip(
            f"only {effective} effective CPU(s) (affinity-aware): a "
            "single-worker run measures the serial path — refusing to emit "
            "a parallel scaling record for it"
        )
    sweep = scaling_sweep()
    n_cells = sweep.n_cells()
    worker_counts = [count for count in WORKER_GRID if count <= effective]
    rounds = 2 if quick_mode() else 1

    def run() -> ResultTable:
        table = ResultTable()
        baseline_rows = None
        baseline_seconds = None
        for workers in worker_counts:
            best = None
            for _ in range(rounds):
                start = time.perf_counter()
                result = run_sweep_parallel(sweep, workers=workers)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            stripped = _strip_timings(result)
            if baseline_rows is None:
                baseline_rows, baseline_seconds = stripped, best
            else:
                assert stripped == baseline_rows, (
                    f"rows diverge at workers={workers}"
                )
            table.add_row(
                workers=workers,
                cells=n_cells,
                seconds=best,
                cells_per_second=n_cells / best,
                speedup=baseline_seconds / best,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {
        int(row["workers"]): float(row["speedup"]) for row in table.rows
    }
    benchmark.extra_info["workers_measured"] = sorted(speedups)
    benchmark.extra_info["effective_cpus"] = effective
    benchmark.extra_info["speedup_x2"] = speedups[2]
    if 4 in speedups:
        benchmark.extra_info["speedup_x4"] = speedups[4]
    benchmark.extra_info["quick_mode"] = quick_mode()
    emit("PERF_parallel_sweep_scaling", table, benchmark)
    assert speedups[2] >= MIN_SCALING_SPEEDUP, (
        f"2-worker speedup {speedups[2]:.2f}x is below the "
        f"{MIN_SCALING_SPEEDUP}x floor ({effective} effective CPUs)"
    )
